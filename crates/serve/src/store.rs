//! Crash-safe persistent cell cache: an append-only, content-addressed,
//! checksummed log of `(core × benchmark × clock point)` outcomes.
//!
//! The in-memory cell LRU ([`crate::cache`]) dies with the process; this
//! store is the tier under it, so a daemon restart — or a fresh CI run
//! pointed at the same `--cache-dir` — starts warm. The design leans on
//! the same property that makes the serving cache sound in the first
//! place: cell outcomes are *byte-deterministic* functions of their
//! fingerprinted spec ([`fo4depth_study::cells::CellSpec`]), so a record
//! read back from disk is indistinguishable from a fresh simulation.
//!
//! # On-disk format
//!
//! `cells.log` is a 24-byte header followed by back-to-back records:
//!
//! ```text
//! header:  "FO4DCELL" | format u32 LE | cell-schema u32 LE | log-id u64 LE
//! record:  fingerprint u64 LE | payload-len u32 LE | CRC32C u32 LE | payload
//! ```
//!
//! The CRC32C covers the fingerprint, the length, and the payload, so a
//! torn header is as detectable as a torn payload. Appending is the only
//! mutation; replacing a cell's value appends a newer record (last record
//! wins on recovery, and [`compact`] rewrites the log without the losers).
//!
//! `cells.idx` is a sidecar snapshot of the in-memory index (fingerprint
//! → record offset), refreshed every [`StoreConfig::index_interval`]
//! appends via write-then-rename. It is an *accelerator*, never an
//! authority: it names the log it was built from by log-id and covered
//! length, and a stale, torn, or missing sidecar merely means the tail
//! (or whole log) is re-scanned at open.
//!
//! # Crash safety and degradation
//!
//! * **Recovery never refuses to start.** Open scans forward and
//!   truncates at the first short or checksum-failing record; what was
//!   dropped is counted ([`StoreStats::dropped_bytes`]) and reported in
//!   `/metrics`. A foreign or stale-schema file is reset rather than
//!   trusted.
//! * **Appends are write-behind and bounded.** Producers enqueue encoded
//!   records; a full queue sheds the write (the simulation result is
//!   still served from memory). A failed append rewinds the log to its
//!   pre-append length so one bad write cannot poison the tail; if even
//!   the rewind fails the store flips to *degraded* and stops persisting
//!   — serving never stops.
//! * **Reads re-verify.** Every load re-checks the record CRC and
//!   re-decodes the payload; bit rot yields a cache miss (and a counter),
//!   never a corrupt response.
//! * **`--fsync always|batch|off`** trades durability for append latency:
//!   per-record `fdatasync`, batched sync (on queue drain or every
//!   [`BATCH_FSYNC_EVERY`] records), or none.
//!
//! Every I/O step is routed through an [`IoFault`] hook so tests can
//! inject `ENOSPC`, short writes, and fsync failures deterministically
//! ([`ScriptedFaults`]).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use fo4depth_pipeline::{Counters, SimResult, StallCause};
use fo4depth_study::cells::CELL_SCHEMA;
use fo4depth_study::sim::BenchOutcome;
use fo4depth_study::sweep::CoreKind;
use fo4depth_uarch::cache::CacheStats as CoreCacheStats;
use fo4depth_uarch::observe::OccupancyHist;
use fo4depth_uarch::BtbStats;
use fo4depth_util::crc::crc32c;
use fo4depth_util::fsio;
use fo4depth_workload::BenchClass;

/// The append-only log's file name inside the cache directory.
pub const LOG_FILE: &str = "cells.log";
/// The sidecar index's file name inside the cache directory.
pub const INDEX_FILE: &str = "cells.idx";

const LOG_MAGIC: &[u8; 8] = b"FO4DCELL";
const IDX_MAGIC: &[u8; 8] = b"FO4DIDX\0";
/// On-disk framing version (bump on incompatible layout changes).
/// Format 2 added the core-tag byte to the outcome payload
/// ([`encode_outcome_tagged`]); format-1 logs are reset at open.
const LOG_FORMAT: u32 = 2;
/// Log header length in bytes.
pub const HEADER_LEN: u64 = 24;
/// Record framing length (fingerprint + length + CRC) in bytes.
pub const RECORD_OVERHEAD: usize = 16;
/// Largest accepted payload; longer lengths are treated as corruption
/// (a real cell payload is a few KiB even with full counters).
pub const MAX_PAYLOAD: u32 = 1 << 24;
/// Under `FsyncPolicy::Batch`, sync at the latest after this many appends.
pub const BATCH_FSYNC_EVERY: u64 = 32;

/// When `fo4depth serve` pushes bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record: a record acknowledged to
    /// the queue survives `kill -9` once the persister has written it.
    Always,
    /// Sync when the write-behind queue drains, or at the latest every
    /// [`BATCH_FSYNC_EVERY`] records (the default).
    #[default]
    Batch,
    /// Never sync; the OS flushes at its leisure. Recovery still holds —
    /// whatever prefix reached the disk is intact by CRC.
    Off,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "batch" => Some(Self::Batch),
            "off" => Some(Self::Off),
            _ => None,
        }
    }

    /// The flag spelling back.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Batch => "batch",
            Self::Off => "off",
        }
    }
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// Why a record (or payload) failed to decode. `Truncated` means the
/// input ended mid-record — the expected shape of a crashed writer's
/// tail; `Corrupt` means the bytes are present but inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The input ends before the record does.
    Truncated,
    /// Checksum mismatch, impossible length, or malformed payload.
    Corrupt,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Truncated => "truncated record",
            Self::Corrupt => "corrupt record",
        })
    }
}

/// Frames `payload` as one log record.
#[must_use]
pub fn encode_record(fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD as usize, "payload too large");
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc = crc32c(&out[..12]);
    crc = fo4depth_util::crc::crc32c_append(crc, payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one record from the front of `bytes`, returning the
/// fingerprint, the payload, and the bytes consumed.
///
/// # Errors
///
/// [`RecordError::Truncated`] when `bytes` ends mid-record,
/// [`RecordError::Corrupt`] on an impossible length or CRC mismatch.
/// Never panics, whatever the input.
pub fn decode_record(bytes: &[u8]) -> Result<(u64, &[u8], usize), RecordError> {
    if bytes.len() < RECORD_OVERHEAD {
        return Err(RecordError::Truncated);
    }
    let fingerprint = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(RecordError::Corrupt);
    }
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let total = RECORD_OVERHEAD + len as usize;
    if bytes.len() < total {
        return Err(RecordError::Truncated);
    }
    let payload = &bytes[RECORD_OVERHEAD..total];
    let mut crc = crc32c(&bytes[..12]);
    crc = fo4depth_util::crc::crc32c_append(crc, payload);
    if crc != stored_crc {
        return Err(RecordError::Corrupt);
    }
    Ok((fingerprint, payload, total))
}

// ---------------------------------------------------------------------------
// Outcome payload codec
// ---------------------------------------------------------------------------

/// Payload codec version (independent of the framing version).
/// Version 2 inserted the core-tag byte after the version byte.
const OUTCOME_VERSION: u8 = 2;
/// Sanity cap on decoded occupancy-histogram lengths.
const MAX_HIST_BUCKETS: u32 = 1 << 20;

/// The core-tag byte: which core model produced a persisted outcome.
/// The tag is provenance metadata for `fo4depth cache stat` — loads key
/// on the fingerprint alone (which already covers the core), so tagged
/// and untagged records interoperate.
fn core_tag_byte(core: Option<CoreKind>) -> u8 {
    match core {
        None => 0,
        Some(CoreKind::InOrder) => 1,
        Some(CoreKind::OutOfOrder) => 2,
    }
}

/// The `cache stat` spelling of a core tag.
#[must_use]
pub fn core_tag_key(tag: u8) -> &'static str {
    match tag {
        1 => "inorder",
        2 => "ooo",
        _ => "untagged",
    }
}

/// The core model recorded in a payload's core-tag byte, for callers
/// re-installing wire records (`POST /v1/records`) that need to
/// preserve provenance. `Ok(None)` is an untagged record.
///
/// # Errors
///
/// [`RecordError::Truncated`] on a payload shorter than its prefix,
/// [`RecordError::Corrupt`] on a wrong codec version or an impossible
/// tag value.
pub fn payload_core(payload: &[u8]) -> Result<Option<CoreKind>, RecordError> {
    if payload.len() < 2 {
        return Err(RecordError::Truncated);
    }
    if payload[0] != OUTCOME_VERSION {
        return Err(RecordError::Corrupt);
    }
    match payload[1] {
        0 => Ok(None),
        1 => Ok(Some(CoreKind::InOrder)),
        2 => Ok(Some(CoreKind::OutOfOrder)),
        _ => Err(RecordError::Corrupt),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_hist(out: &mut Vec<u8>, hist: &OccupancyHist) {
    let buckets = hist.buckets();
    put_u32(out, buckets.len() as u32);
    for &b in buckets {
        put_u64(out, b);
    }
}

/// Serializes one [`BenchOutcome`] into the log's payload encoding. The
/// encoding is exact — every counter is a fixed-width integer — so
/// decode ∘ encode is the identity and a warm-started daemon's responses
/// are byte-identical to cold ones.
///
/// [`encode_outcome_tagged`] with no core tag.
#[must_use]
pub fn encode_outcome(outcome: &BenchOutcome) -> Vec<u8> {
    encode_outcome_tagged(outcome, None)
}

/// [`encode_outcome`] carrying the producing core model in the payload's
/// core-tag byte, so offline inspection can attribute entries per core
/// without re-deriving specs.
#[must_use]
pub fn encode_outcome_tagged(outcome: &BenchOutcome, core: Option<CoreKind>) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.push(OUTCOME_VERSION);
    out.push(core_tag_byte(core));
    let name = outcome.name.as_bytes();
    assert!(name.len() <= usize::from(u16::MAX), "benchmark name length");
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.push(match outcome.class {
        BenchClass::Integer => 0,
        BenchClass::VectorFp => 1,
        BenchClass::NonVectorFp => 2,
    });
    let r = &outcome.result;
    for v in [
        r.instructions,
        r.cycles,
        r.branches,
        r.mispredicts,
        r.l1.hits,
        r.l1.misses,
        r.l2.hits,
        r.l2.misses,
        r.forwards,
        r.loads,
    ] {
        put_u64(&mut out, v);
    }
    match &outcome.counters {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_u32(&mut out, c.width);
            put_u64(&mut out, c.cycles);
            put_u64(&mut out, c.useful_slots);
            put_u32(&mut out, StallCause::COUNT as u32);
            for &s in &c.stall_slots {
                put_u64(&mut out, s);
            }
            put_hist(&mut out, &c.window_occupancy);
            put_hist(&mut out, &c.rob_occupancy);
            put_hist(&mut out, &c.lsq_occupancy);
            put_u64(&mut out, c.dispatch_blocked_rob);
            put_u64(&mut out, c.dispatch_blocked_window);
            put_u64(&mut out, c.dispatch_blocked_lsq);
            put_u64(&mut out, c.dispatch_blocked_rename);
            put_u64(&mut out, c.btb.lookups);
            put_u64(&mut out, c.btb.hits);
        }
    }
    out
}

/// Bounds-checked little-endian reader over a payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).ok_or(RecordError::Corrupt)?;
        if end > self.bytes.len() {
            return Err(RecordError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RecordError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn hist(&mut self) -> Result<OccupancyHist, RecordError> {
        let len = self.u32()?;
        if len > MAX_HIST_BUCKETS {
            return Err(RecordError::Corrupt);
        }
        let mut buckets = Vec::with_capacity(len as usize);
        for _ in 0..len {
            buckets.push(self.u64()?);
        }
        Ok(OccupancyHist::from_buckets(buckets))
    }
}

/// Deserializes a [`BenchOutcome`] payload.
///
/// # Errors
///
/// [`RecordError::Truncated`] when the payload ends early,
/// [`RecordError::Corrupt`] on bad tags, bad UTF-8, impossible lengths,
/// or trailing garbage. Never panics, whatever the input.
pub fn decode_outcome(bytes: &[u8]) -> Result<BenchOutcome, RecordError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.u8()? != OUTCOME_VERSION {
        return Err(RecordError::Corrupt);
    }
    if r.u8()? > 2 {
        // Core tag: provenance only, but an impossible value means the
        // payload is not ours.
        return Err(RecordError::Corrupt);
    }
    let name_len = usize::from(r.u16()?);
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| RecordError::Corrupt)?
        .to_string();
    let class = match r.u8()? {
        0 => BenchClass::Integer,
        1 => BenchClass::VectorFp,
        2 => BenchClass::NonVectorFp,
        _ => return Err(RecordError::Corrupt),
    };
    let result = SimResult {
        instructions: r.u64()?,
        cycles: r.u64()?,
        branches: r.u64()?,
        mispredicts: r.u64()?,
        l1: CoreCacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
        },
        l2: CoreCacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
        },
        forwards: r.u64()?,
        loads: r.u64()?,
    };
    let counters = match r.u8()? {
        0 => None,
        1 => {
            let width = r.u32()?;
            let cycles = r.u64()?;
            let useful_slots = r.u64()?;
            if r.u32()? as usize != StallCause::COUNT {
                // A log written by a simulator with a different stall
                // taxonomy; its counters do not map onto ours.
                return Err(RecordError::Corrupt);
            }
            let mut stall_slots = [0u64; StallCause::COUNT];
            for slot in &mut stall_slots {
                *slot = r.u64()?;
            }
            let window_occupancy = r.hist()?;
            let rob_occupancy = r.hist()?;
            let lsq_occupancy = r.hist()?;
            Some(Counters {
                width,
                cycles,
                useful_slots,
                stall_slots,
                window_occupancy,
                rob_occupancy,
                lsq_occupancy,
                dispatch_blocked_rob: r.u64()?,
                dispatch_blocked_window: r.u64()?,
                dispatch_blocked_lsq: r.u64()?,
                dispatch_blocked_rename: r.u64()?,
                btb: BtbStats {
                    lookups: r.u64()?,
                    hits: r.u64()?,
                },
            })
        }
        _ => return Err(RecordError::Corrupt),
    };
    if r.pos != bytes.len() {
        return Err(RecordError::Corrupt);
    }
    Ok(BenchOutcome {
        name,
        class,
        result,
        counters,
    })
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One injected I/O failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The operation fails outright with this error kind (use
    /// [`io::ErrorKind::StorageFull`] for `ENOSPC`).
    Error(io::ErrorKind),
    /// The append writes only the first `n` bytes — a torn record — and
    /// then fails. This is the `kill -9`/power-cut shape.
    Short(usize),
}

/// Hooks on the store's writes so tests can break the disk on purpose.
/// The default implementation of every hook injects nothing; the store
/// calls them on its persister thread, never on request threads.
pub trait IoFault: Send + Sync {
    /// Consulted before appending an encoded record of `record_len` bytes.
    fn on_append(&self, record_len: usize) -> Option<InjectedFault> {
        let _ = record_len;
        None
    }

    /// Consulted before each `fdatasync`.
    fn on_fsync(&self) -> Option<io::ErrorKind> {
        None
    }

    /// Consulted before the post-failure rewind truncate.
    fn on_truncate(&self) -> Option<io::ErrorKind> {
        None
    }
}

/// The production no-op fault layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFault;

impl IoFault for NoFault {}

/// A deterministic scripted fault injector: each hook pops the next
/// scripted answer for its operation (FIFO) and injects nothing once its
/// script runs dry.
#[derive(Default)]
pub struct ScriptedFaults {
    appends: Mutex<VecDeque<Option<InjectedFault>>>,
    fsyncs: Mutex<VecDeque<Option<io::ErrorKind>>>,
    truncates: Mutex<VecDeque<Option<io::ErrorKind>>>,
}

impl ScriptedFaults {
    /// An empty script (no faults until scripted).
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Scripts the next append: `None` passes cleanly, `Some` injects.
    pub fn script_append(&self, fault: Option<InjectedFault>) {
        self.appends.lock().expect("fault lock").push_back(fault);
    }

    /// Scripts the next fsync.
    pub fn script_fsync(&self, fault: Option<io::ErrorKind>) {
        self.fsyncs.lock().expect("fault lock").push_back(fault);
    }

    /// Scripts the next rewind truncate.
    pub fn script_truncate(&self, fault: Option<io::ErrorKind>) {
        self.truncates.lock().expect("fault lock").push_back(fault);
    }
}

impl IoFault for ScriptedFaults {
    fn on_append(&self, _record_len: usize) -> Option<InjectedFault> {
        self.appends
            .lock()
            .expect("fault lock")
            .pop_front()
            .flatten()
    }

    fn on_fsync(&self) -> Option<io::ErrorKind> {
        self.fsyncs
            .lock()
            .expect("fault lock")
            .pop_front()
            .flatten()
    }

    fn on_truncate(&self) -> Option<io::ErrorKind> {
        self.truncates
            .lock()
            .expect("fault lock")
            .pop_front()
            .flatten()
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Everything configurable about one [`CellStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding `cells.log` and `cells.idx`.
    pub dir: PathBuf,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
    /// Bounded write-behind queue (records); beyond this, persistence is
    /// shed, not serving.
    pub queue_capacity: usize,
    /// Appends between sidecar-index snapshots.
    pub index_interval: u64,
}

impl StoreConfig {
    /// Defaults for `dir`: batched fsync, a 1024-record queue, an index
    /// snapshot every 64 appends.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            queue_capacity: 1024,
            index_interval: 64,
        }
    }
}

/// Counter snapshot of one store, rendered into `/metrics` and the
/// `fo4depth cache stat` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Distinct fingerprints currently indexed (loadable).
    pub entries: usize,
    /// Committed log length in bytes (header included).
    pub log_bytes: u64,
    /// Loads answered from disk.
    pub hits: u64,
    /// Loads that found no (readable) record.
    pub misses: u64,
    /// Loads that found a record which failed its CRC or decode — bit
    /// rot surfacing as a miss instead of a corrupt response.
    pub read_errors: u64,
    /// Records appended durably (by the configured policy).
    pub appended: u64,
    /// Appends that failed at the disk and were rolled back.
    pub append_errors: u64,
    /// Writes shed: queue full, or the store degraded.
    pub shed: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
    /// `fdatasync` calls that failed (durability lost, consistency kept).
    pub fsync_errors: u64,
    /// Sidecar index snapshots written.
    pub index_writes: u64,
    /// Sidecar snapshots that failed to write (the log is the authority;
    /// the only cost is a longer scan at next open).
    pub index_write_errors: u64,
    /// Entries recovered from the log at open.
    pub recovered_entries: u64,
    /// Corrupt-tail (or foreign-file) bytes truncated at open.
    pub dropped_bytes: u64,
    /// Whether persistence has been disabled after an unrecoverable
    /// write failure (serving continues from memory).
    pub degraded: bool,
    /// Write-behind records currently queued.
    pub queue_depth: usize,
    /// Write-behind queue bound.
    pub queue_capacity: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u64,
    total_len: u32,
}

struct LogState {
    file: File,
    len: u64,
    appends_since_index: u64,
    appends_since_fsync: u64,
}

struct Queue {
    items: VecDeque<(u64, Vec<u8>)>,
    shutdown: bool,
    exited: bool,
    flush_epoch: u64,
    flushed_epoch: u64,
}

struct Inner {
    config: StoreConfig,
    idx_path: PathBuf,
    log_id: u64,
    log: Mutex<LogState>,
    index: Mutex<HashMap<u64, Slot>>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    fault: Arc<dyn IoFault>,
    degraded: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    read_errors: AtomicU64,
    appended: AtomicU64,
    append_errors: AtomicU64,
    shed: AtomicU64,
    fsyncs: AtomicU64,
    fsync_errors: AtomicU64,
    index_writes: AtomicU64,
    index_write_errors: AtomicU64,
    recovered_entries: u64,
    dropped_bytes: u64,
}

/// The persistent cell tier: open/recover, read-through loads, bounded
/// write-behind appends, and explicit flush.
pub struct CellStore {
    inner: Arc<Inner>,
    persister: Mutex<Option<std::thread::JoinHandle<()>>>,
}

fn header_bytes(log_id: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..8].copy_from_slice(LOG_MAGIC);
    h[8..12].copy_from_slice(&LOG_FORMAT.to_le_bytes());
    h[12..16].copy_from_slice(&(CELL_SCHEMA as u32).to_le_bytes());
    h[16..24].copy_from_slice(&log_id.to_le_bytes());
    h
}

/// Parses a log header, returning its log-id when compatible.
fn parse_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN as usize
        || &bytes[0..8] != LOG_MAGIC
        || bytes[8..12] != LOG_FORMAT.to_le_bytes()
        || bytes[12..16] != (CELL_SCHEMA as u32).to_le_bytes()
    {
        return None;
    }
    Some(u64::from_le_bytes(bytes[16..24].try_into().expect("8")))
}

fn fresh_log_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // Mix in the pid so two processes creating logs in the same nanosecond
    // (or on a clockless platform) still differ.
    nanos ^ (u64::from(std::process::id()) << 48) | 1
}

fn encode_index(log_id: u64, covered_len: u64, entries: &[(u64, Slot)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + entries.len() * 20);
    out.extend_from_slice(IDX_MAGIC);
    out.extend_from_slice(&LOG_FORMAT.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&log_id.to_le_bytes());
    out.extend_from_slice(&covered_len.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for &(fp, slot) in entries {
        out.extend_from_slice(&fp.to_le_bytes());
        out.extend_from_slice(&slot.offset.to_le_bytes());
        out.extend_from_slice(&slot.total_len.to_le_bytes());
    }
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A decoded sidecar snapshot: which log generation it describes, how
/// many log bytes it covers, and the slots it carries.
struct IndexSnapshot {
    log_id: u64,
    covered_len: u64,
    entries: Vec<(u64, Slot)>,
}

fn decode_index(bytes: &[u8]) -> Option<IndexSnapshot> {
    if bytes.len() < 44 || &bytes[0..8] != IDX_MAGIC || bytes[8..12] != LOG_FORMAT.to_le_bytes() {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4"));
    if crc32c(body) != stored {
        return None;
    }
    let log_id = u64::from_le_bytes(bytes[16..24].try_into().expect("8"));
    let covered_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8"));
    let count = u64::from_le_bytes(bytes[32..40].try_into().expect("8"));
    let entry_bytes = body.len().checked_sub(40)?;
    if count.checked_mul(20)? != entry_bytes as u64 {
        return None;
    }
    let mut entries = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let at = 40 + i * 20;
        let fp = u64::from_le_bytes(body[at..at + 8].try_into().expect("8"));
        let offset = u64::from_le_bytes(body[at + 8..at + 16].try_into().expect("8"));
        let total_len = u32::from_le_bytes(body[at + 16..at + 20].try_into().expect("4"));
        entries.push((fp, Slot { offset, total_len }));
    }
    Some(IndexSnapshot {
        log_id,
        covered_len,
        entries,
    })
}

impl CellStore {
    /// Opens (creating if absent) the store in `config.dir`, recovering
    /// from whatever state a previous process — cleanly exited, killed,
    /// or interrupted mid-write — left behind. Corruption is truncated
    /// and counted, never fatal.
    ///
    /// # Errors
    ///
    /// Returns environment errors only: the directory cannot be created,
    /// or the log cannot be opened/read at all.
    pub fn open(config: StoreConfig, fault: Arc<dyn IoFault>) -> io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let log_path = config.dir.join(LOG_FILE);
        let idx_path = config.dir.join(INDEX_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let disk_len = file.metadata()?.len();
        let mut dropped_bytes = 0u64;

        let mut head = [0u8; HEADER_LEN as usize];
        let log_id = if disk_len >= HEADER_LEN {
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut head)?;
            parse_header(&head)
        } else {
            None
        };
        let (log_id, mut len) = match log_id {
            Some(id) => (id, disk_len),
            None => {
                // Empty, foreign, or stale-schema file: start fresh. A
                // stale schema means every cached outcome is invalid
                // anyway; counting the old bytes as dropped makes the
                // reset visible in /metrics.
                dropped_bytes += disk_len;
                let id = fresh_log_id();
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&header_bytes(id))?;
                file.sync_all()?;
                (id, HEADER_LEN)
            }
        };

        // Seed the index from the sidecar when it provably describes this
        // log (same id, covers no more than what exists); otherwise scan
        // everything. The sidecar is only ever a head start: record CRCs
        // are re-verified on every load.
        let mut index: HashMap<u64, Slot> = HashMap::new();
        let mut scan_from = HEADER_LEN;
        if let Ok(bytes) = std::fs::read(&idx_path) {
            if let Some(snapshot) = decode_index(&bytes) {
                if snapshot.log_id == log_id
                    && snapshot.covered_len >= HEADER_LEN
                    && snapshot.covered_len <= len
                {
                    index.extend(snapshot.entries);
                    scan_from = snapshot.covered_len;
                }
            }
        }

        // Scan the (tail of the) log, truncating at the first bad record.
        if len > scan_from {
            let mut tail = vec![0u8; (len - scan_from) as usize];
            file.seek(SeekFrom::Start(scan_from))?;
            file.read_exact(&mut tail)?;
            let mut at = 0usize;
            while at < tail.len() {
                match decode_record(&tail[at..]) {
                    Ok((fp, _payload, consumed)) => {
                        index.insert(
                            fp,
                            Slot {
                                offset: scan_from + at as u64,
                                total_len: consumed as u32,
                            },
                        );
                        at += consumed;
                    }
                    Err(_) => {
                        let good_end = scan_from + at as u64;
                        dropped_bytes += len - good_end;
                        file.set_len(good_end)?;
                        file.sync_all()?;
                        len = good_end;
                        break;
                    }
                }
            }
        }

        let recovered_entries = index.len() as u64;
        let inner = Arc::new(Inner {
            idx_path,
            log_id,
            log: Mutex::new(LogState {
                file,
                len,
                appends_since_index: 0,
                appends_since_fsync: 0,
            }),
            index: Mutex::new(index),
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                shutdown: false,
                exited: false,
                flush_epoch: 0,
                flushed_epoch: 0,
            }),
            queue_cv: Condvar::new(),
            fault,
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fsync_errors: AtomicU64::new(0),
            index_writes: AtomicU64::new(0),
            index_write_errors: AtomicU64::new(0),
            recovered_entries,
            dropped_bytes,
            config,
        });
        let persister = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("cell-store".to_string())
                .spawn(move || persister_loop(&inner))
                .expect("spawn store persister")
        };
        Ok(Self {
            inner,
            persister: Mutex::new(Some(persister)),
        })
    }

    /// Loads one outcome from disk, re-verifying its checksum. Any
    /// failure — absent, torn, rotted — is a `None` plus a counter,
    /// never an error or a bad value.
    #[must_use]
    pub fn load(&self, fingerprint: u64) -> Option<BenchOutcome> {
        let slot = {
            let index = self.inner.index.lock().expect("index lock");
            index.get(&fingerprint).copied()
        };
        let Some(slot) = slot else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let mut buf = vec![0u8; slot.total_len as usize];
        if self.read_at(&mut buf, slot.offset).is_err() {
            self.inner.read_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let outcome = match decode_record(&buf) {
            Ok((fp, payload, _)) if fp == fingerprint => decode_outcome(payload),
            _ => Err(RecordError::Corrupt),
        };
        match outcome {
            Ok(o) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(o)
            }
            Err(_) => {
                self.inner.read_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Positioned read that does not disturb the append cursor: the log
    /// lock is taken briefly, so loads and appends interleave safely.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let mut log = self.inner.log.lock().expect("log lock");
        if offset + buf.len() as u64 > log.len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "slot past committed length",
            ));
        }
        let pos = log.file.stream_position()?;
        let result = log
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| log.file.read_exact(buf));
        log.file.seek(SeekFrom::Start(pos))?;
        result
    }

    /// Queues one outcome for persistence (write-behind). A full queue
    /// or a degraded store sheds the write and counts it; the caller's
    /// in-memory result is unaffected.
    ///
    /// [`put_tagged`](Self::put_tagged) with no core tag.
    pub fn put(&self, fingerprint: u64, outcome: &BenchOutcome) {
        self.put_tagged(fingerprint, None, outcome);
    }

    /// [`put`](Self::put) with the producing core recorded in the
    /// payload's core-tag byte, so `fo4depth cache stat` can attribute
    /// entries per core.
    pub fn put_tagged(&self, fingerprint: u64, core: Option<CoreKind>, outcome: &BenchOutcome) {
        if self.inner.degraded.load(Ordering::Relaxed) {
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let record = encode_record(fingerprint, &encode_outcome_tagged(outcome, core));
        let mut queue = self.inner.queue.lock().expect("queue lock");
        if queue.shutdown || queue.items.len() >= self.inner.config.queue_capacity {
            drop(queue);
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        queue.items.push_back((fingerprint, record));
        drop(queue);
        self.inner.queue_cv.notify_all();
    }

    /// Blocks until every queued record is on disk (by the configured
    /// fsync policy, plus one explicit sync) and the sidecar index is
    /// current. Called on graceful daemon shutdown; cheap when idle.
    pub fn flush(&self) {
        let mut queue = self.inner.queue.lock().expect("queue lock");
        if queue.exited {
            return;
        }
        queue.flush_epoch += 1;
        let target = queue.flush_epoch;
        self.inner.queue_cv.notify_all();
        while queue.flushed_epoch < target && !queue.exited {
            queue = self.inner.queue_cv.wait(queue).expect("queue lock");
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let entries = self.inner.index.lock().expect("index lock").len();
        let log_bytes = self.inner.log.lock().expect("log lock").len;
        let queue_depth = self.inner.queue.lock().expect("queue lock").items.len();
        StoreStats {
            entries,
            log_bytes,
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            read_errors: self.inner.read_errors.load(Ordering::Relaxed),
            appended: self.inner.appended.load(Ordering::Relaxed),
            append_errors: self.inner.append_errors.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            fsync_errors: self.inner.fsync_errors.load(Ordering::Relaxed),
            index_writes: self.inner.index_writes.load(Ordering::Relaxed),
            index_write_errors: self.inner.index_write_errors.load(Ordering::Relaxed),
            recovered_entries: self.inner.recovered_entries,
            dropped_bytes: self.inner.dropped_bytes,
            degraded: self.inner.degraded.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity: self.inner.config.queue_capacity,
        }
    }

    /// The store's cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.inner.config.dir
    }
}

impl Drop for CellStore {
    fn drop(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        if let Some(handle) = self.persister.lock().expect("persister lock").take() {
            let _ = handle.join();
        }
    }
}

enum Job {
    Append(u64, Vec<u8>),
    Flush(u64),
    Exit,
}

fn persister_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some((fp, record)) = queue.items.pop_front() {
                    break Job::Append(fp, record);
                }
                if queue.flush_epoch > queue.flushed_epoch {
                    break Job::Flush(queue.flush_epoch);
                }
                if queue.shutdown {
                    break Job::Exit;
                }
                queue = inner.queue_cv.wait(queue).expect("queue lock");
            }
        };
        match job {
            Job::Append(fp, record) => append(inner, fp, &record),
            Job::Flush(epoch) => {
                sync_and_snapshot(inner);
                let mut queue = inner.queue.lock().expect("queue lock");
                queue.flushed_epoch = queue.flushed_epoch.max(epoch);
                drop(queue);
                inner.queue_cv.notify_all();
            }
            Job::Exit => {
                sync_and_snapshot(inner);
                let mut queue = inner.queue.lock().expect("queue lock");
                queue.exited = true;
                drop(queue);
                inner.queue_cv.notify_all();
                return;
            }
        }
    }
}

/// Appends one encoded record, keeping the log's intact-prefix invariant
/// whatever the disk does.
fn append(inner: &Arc<Inner>, fingerprint: u64, record: &[u8]) {
    if inner.degraded.load(Ordering::Relaxed) {
        inner.shed.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut log = inner.log.lock().expect("log lock");
    let pre = log.len;
    let write_result = match inner.fault.on_append(record.len()) {
        Some(InjectedFault::Error(kind)) => Err(io::Error::new(kind, "injected append fault")),
        Some(InjectedFault::Short(n)) => {
            // Land a genuinely torn record on disk, then fail — the shape
            // a crash mid-write leaves behind.
            let n = n.min(record.len());
            let _ = log
                .file
                .seek(SeekFrom::Start(pre))
                .and_then(|_| log.file.write_all(&record[..n]));
            Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ))
        }
        None => log
            .file
            .seek(SeekFrom::Start(pre))
            .and_then(|_| log.file.write_all(record)),
    };
    match write_result {
        Ok(()) => {
            log.len = pre + record.len() as u64;
            log.appends_since_index += 1;
            log.appends_since_fsync += 1;
            inner.appended.fetch_add(1, Ordering::Relaxed);
            inner.index.lock().expect("index lock").insert(
                fingerprint,
                Slot {
                    offset: pre,
                    total_len: record.len() as u32,
                },
            );
            let sync_now = match inner.config.fsync {
                FsyncPolicy::Always => true,
                FsyncPolicy::Batch => {
                    log.appends_since_fsync >= BATCH_FSYNC_EVERY
                        || inner.queue.lock().expect("queue lock").items.is_empty()
                }
                FsyncPolicy::Off => false,
            };
            if sync_now {
                fsync_log(inner, &mut log);
            }
            if log.appends_since_index >= inner.config.index_interval {
                write_snapshot(inner, &mut log);
            }
        }
        Err(_) => {
            // The tail may now hold a torn record. Rewind to the last
            // committed length; if even that fails, stop persisting —
            // appending after an unknown tail would bury every later
            // record behind garbage.
            inner.append_errors.fetch_add(1, Ordering::Relaxed);
            let rewind = match inner.fault.on_truncate() {
                Some(kind) => Err(io::Error::new(kind, "injected truncate fault")),
                None => log.file.set_len(pre),
            };
            if rewind.is_err() {
                inner.degraded.store(true, Ordering::Relaxed);
            }
        }
    }
}

fn fsync_log(inner: &Arc<Inner>, log: &mut LogState) {
    let result = match inner.fault.on_fsync() {
        Some(kind) => Err(io::Error::new(kind, "injected fsync fault")),
        None => log.file.sync_data(),
    };
    match result {
        Ok(()) => {
            inner.fsyncs.fetch_add(1, Ordering::Relaxed);
            log.appends_since_fsync = 0;
        }
        Err(_) => {
            // Durability of recent appends is unknown; consistency is
            // not at risk (the prefix property holds regardless).
            inner.fsync_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn write_snapshot(inner: &Arc<Inner>, log: &mut LogState) {
    let mut entries: Vec<(u64, Slot)> = {
        let index = inner.index.lock().expect("index lock");
        index.iter().map(|(&fp, &slot)| (fp, slot)).collect()
    };
    entries.sort_by_key(|&(_, slot)| slot.offset);
    let bytes = encode_index(inner.log_id, log.len, &entries);
    match fsio::write_atomic(&inner.idx_path, &bytes) {
        Ok(()) => {
            inner.index_writes.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            inner.index_write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Either way, wait a full interval before trying again.
    log.appends_since_index = 0;
}

fn sync_and_snapshot(inner: &Arc<Inner>) {
    let mut log = inner.log.lock().expect("log lock");
    if inner.config.fsync != FsyncPolicy::Off {
        fsync_log(inner, &mut log);
    }
    write_snapshot(inner, &mut log);
}

// ---------------------------------------------------------------------------
// Offline inspection (fo4depth cache stat|verify|compact)
// ---------------------------------------------------------------------------

/// What walking a log (offline) found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogReport {
    /// File length in bytes.
    pub log_bytes: u64,
    /// Whether the header identified a compatible log.
    pub header_ok: bool,
    /// Records walked, superseded ones included.
    pub records: u64,
    /// Distinct fingerprints (live entries).
    pub entries: u64,
    /// Bytes of live records, framing included — what [`compact`] would
    /// keep (plus the header).
    pub live_bytes: u64,
    /// Unreadable tail bytes (torn or corrupt).
    pub corrupt_tail_bytes: u64,
    /// Live records whose payload failed to decode (verify mode only).
    pub payload_errors: u64,
    /// Live entries per producing core ([`core_tag_key`] spelling).
    pub by_core: BTreeMap<&'static str, u64>,
    /// Live entries per benchmark name.
    pub by_benchmark: BTreeMap<String, u64>,
}

/// Reads the cheap payload prefix — codec version, core tag, benchmark
/// name — without touching the counter blocks.
fn payload_prefix(payload: &[u8]) -> Option<(u8, String)> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    if r.u8().ok()? != OUTCOME_VERSION {
        return None;
    }
    let tag = r.u8().ok()?;
    if tag > 2 {
        return None;
    }
    let len = usize::from(r.u16().ok()?);
    let name = std::str::from_utf8(r.take(len).ok()?).ok()?;
    Some((tag, name.to_string()))
}

/// Walks `cells.log` under `dir` and reports entries, bytes, and any
/// corrupt tail. With `decode_payloads` (verify mode), every live
/// payload is additionally decoded.
///
/// # Errors
///
/// Returns I/O errors only (missing file, unreadable); corruption is
/// reported, not returned.
pub fn inspect(dir: &Path, decode_payloads: bool) -> io::Result<LogReport> {
    let bytes = std::fs::read(dir.join(LOG_FILE))?;
    let mut report = LogReport {
        log_bytes: bytes.len() as u64,
        ..LogReport::default()
    };
    if parse_header(&bytes).is_none() {
        report.corrupt_tail_bytes = bytes.len() as u64;
        return Ok(report);
    }
    report.header_ok = true;
    let mut live: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut at = HEADER_LEN as usize;
    while at < bytes.len() {
        match decode_record(&bytes[at..]) {
            Ok((fp, _payload, consumed)) => {
                report.records += 1;
                live.insert(fp, (at, consumed));
                at += consumed;
            }
            Err(_) => {
                report.corrupt_tail_bytes = (bytes.len() - at) as u64;
                break;
            }
        }
    }
    report.entries = live.len() as u64;
    for &(offset, len) in live.values() {
        report.live_bytes += len as u64;
        let (_, payload, _) =
            decode_record(&bytes[offset..offset + len]).expect("walked record re-decodes");
        match payload_prefix(payload) {
            Some((tag, name)) => {
                *report.by_core.entry(core_tag_key(tag)).or_insert(0) += 1;
                *report.by_benchmark.entry(name).or_insert(0) += 1;
            }
            None => {
                *report.by_core.entry("unreadable").or_insert(0) += 1;
            }
        }
        if decode_payloads && decode_outcome(payload).is_err() {
            report.payload_errors += 1;
        }
    }
    Ok(report)
}

/// What a [`compact`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Log length before, in bytes.
    pub bytes_before: u64,
    /// Log length after, in bytes.
    pub bytes_after: u64,
    /// Live entries kept.
    pub entries: u64,
    /// Superseded records dropped.
    pub superseded_dropped: u64,
    /// Corrupt tail bytes dropped.
    pub corrupt_tail_bytes: u64,
}

/// Rewrites `cells.log` under `dir` keeping only the winning record per
/// fingerprint (in log order), dropping any corrupt tail, and refreshing
/// the sidecar index — all atomically (write-new + rename), so a crash
/// mid-compact leaves the old log untouched. Must not race a live
/// daemon on the same directory.
///
/// # Errors
///
/// Returns I/O errors (missing log, unwritable directory).
pub fn compact(dir: &Path) -> io::Result<CompactReport> {
    let log_path = dir.join(LOG_FILE);
    let bytes = std::fs::read(&log_path)?;
    let mut live: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut records = 0u64;
    let mut corrupt_tail_bytes = 0u64;
    let mut at = HEADER_LEN as usize;
    if parse_header(&bytes).is_none() {
        corrupt_tail_bytes = bytes.len() as u64;
        at = bytes.len();
    }
    while at < bytes.len() {
        match decode_record(&bytes[at..]) {
            Ok((fp, _payload, consumed)) => {
                records += 1;
                live.insert(fp, (at, consumed));
                at += consumed;
            }
            Err(_) => {
                corrupt_tail_bytes = (bytes.len() - at) as u64;
                break;
            }
        }
    }
    let mut winners: Vec<(u64, usize, usize)> = live
        .iter()
        .map(|(&fp, &(offset, len))| (fp, offset, len))
        .collect();
    winners.sort_by_key(|&(_, offset, _)| offset);

    let log_id = fresh_log_id();
    let mut out = Vec::with_capacity(
        HEADER_LEN as usize + winners.iter().map(|&(_, _, len)| len).sum::<usize>(),
    );
    out.extend_from_slice(&header_bytes(log_id));
    let mut index_entries = Vec::with_capacity(winners.len());
    for &(fp, offset, len) in &winners {
        index_entries.push((
            fp,
            Slot {
                offset: out.len() as u64,
                total_len: len as u32,
            },
        ));
        out.extend_from_slice(&bytes[offset..offset + len]);
    }
    let bytes_after = out.len() as u64;
    fsio::write_atomic(&log_path, &out)?;
    let idx = encode_index(log_id, bytes_after, &index_entries);
    fsio::write_atomic(&dir.join(INDEX_FILE), &idx)?;
    Ok(CompactReport {
        bytes_before: bytes.len() as u64,
        bytes_after,
        entries: winners.len() as u64,
        superseded_dropped: records - winners.len() as u64,
        corrupt_tail_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fo4depth_util::TempDir;

    fn sample_outcome(seed: u64, observed: bool) -> BenchOutcome {
        let counters = observed.then(|| {
            let mut window = OccupancyHist::new();
            window.record(3);
            window.record(3);
            window.record(17);
            let mut rob = OccupancyHist::new();
            rob.record(0);
            let mut stall_slots = [0u64; StallCause::COUNT];
            for (i, s) in stall_slots.iter_mut().enumerate() {
                *s = seed.wrapping_mul(31).wrapping_add(i as u64);
            }
            Counters {
                width: 4,
                cycles: 1000 + seed,
                useful_slots: 2500,
                stall_slots,
                window_occupancy: window,
                rob_occupancy: rob,
                lsq_occupancy: OccupancyHist::new(),
                dispatch_blocked_rob: 5,
                dispatch_blocked_window: 6,
                dispatch_blocked_lsq: 7,
                dispatch_blocked_rename: 8,
                btb: BtbStats {
                    lookups: 900,
                    hits: 850,
                },
            }
        });
        BenchOutcome {
            name: format!("164.gzip-{seed}"),
            class: BenchClass::Integer,
            result: SimResult {
                instructions: 40_000 + seed,
                cycles: 30_000,
                branches: 5_000,
                mispredicts: 250,
                l1: CoreCacheStats {
                    hits: 9_000,
                    misses: 1_000,
                },
                l2: CoreCacheStats {
                    hits: 800,
                    misses: 200,
                },
                forwards: 123,
                loads: 10_000,
            },
            counters,
        }
    }

    fn open_store(dir: &Path) -> CellStore {
        let mut config = StoreConfig::new(dir);
        config.fsync = FsyncPolicy::Always;
        CellStore::open(config, Arc::new(NoFault)).expect("open store")
    }

    #[test]
    fn record_codec_round_trips_and_rejects_damage() {
        let payload = b"arbitrary payload bytes \x00\xff\x7f";
        let record = encode_record(0xDEAD_BEEF_CAFE_F00D, payload);
        let (fp, got, consumed) = decode_record(&record).expect("round trip");
        assert_eq!(fp, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(got, payload);
        assert_eq!(consumed, record.len());

        // Every strict prefix is Truncated (never Corrupt, never a value):
        // that is exactly the state a crashed writer leaves.
        for cut in 0..record.len() {
            assert_eq!(
                decode_record(&record[..cut]).unwrap_err(),
                RecordError::Truncated,
                "cut at {cut}"
            );
        }
        // Any single flipped byte is caught.
        for i in 0..record.len() {
            let mut bad = record.clone();
            bad[i] ^= 0x20;
            assert!(decode_record(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn outcome_codec_round_trips_observed_and_unobserved() {
        for observed in [false, true] {
            let outcome = sample_outcome(7, observed);
            let decoded = decode_outcome(&encode_outcome(&outcome)).expect("round trip");
            assert_eq!(decoded, outcome);
        }
        // Damage never panics and never yields a wrong value.
        let bytes = encode_outcome(&sample_outcome(7, true));
        for cut in 0..bytes.len() {
            assert!(decode_outcome(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_outcome(&trailing).unwrap_err(), RecordError::Corrupt);
    }

    #[test]
    fn tagged_outcome_codec_round_trips_and_inspect_counts_by_core_and_benchmark() {
        // The core tag is provenance metadata riding ahead of the outcome
        // fields; decoding ignores it, so tagged and untagged payloads
        // yield the same outcome.
        let outcome = sample_outcome(7, true);
        for core in [None, Some(CoreKind::InOrder), Some(CoreKind::OutOfOrder)] {
            let decoded =
                decode_outcome(&encode_outcome_tagged(&outcome, core)).expect("round trip");
            assert_eq!(decoded, outcome, "core {core:?}");
        }

        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        {
            let store = open_store(dir.path());
            store.put_tagged(1, Some(CoreKind::OutOfOrder), &sample_outcome(1, false));
            store.put_tagged(2, Some(CoreKind::OutOfOrder), &sample_outcome(2, true));
            store.put_tagged(3, Some(CoreKind::InOrder), &sample_outcome(3, false));
            store.put(4, &sample_outcome(4, false));
            // A superseding record must count once, under its final name.
            store.put_tagged(1, Some(CoreKind::OutOfOrder), &sample_outcome(5, false));
            store.flush();
        }
        let report = inspect(dir.path(), true).expect("inspect");
        assert_eq!(report.entries, 4);
        assert_eq!(report.payload_errors, 0);
        assert_eq!(report.by_core.get("ooo"), Some(&2));
        assert_eq!(report.by_core.get("inorder"), Some(&1));
        assert_eq!(report.by_core.get("untagged"), Some(&1));
        assert_eq!(report.by_core.values().sum::<u64>(), report.entries);
        assert_eq!(report.by_benchmark.values().sum::<u64>(), report.entries);
        assert_eq!(
            report.by_benchmark.get("164.gzip-5"),
            Some(&1),
            "the winning record's benchmark is the one counted"
        );
        assert!(!report.by_benchmark.contains_key("164.gzip-1"));
    }

    #[test]
    fn put_flush_load_round_trips_across_reopen() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let a = sample_outcome(1, true);
        let b = sample_outcome(2, false);
        {
            let store = open_store(dir.path());
            store.put(10, &a);
            store.put(20, &b);
            store.flush();
            assert_eq!(store.load(10).expect("a"), a);
            assert_eq!(store.stats().appended, 2);
            assert_eq!(store.stats().entries, 2);
        }
        let store = open_store(dir.path());
        let s = store.stats();
        assert_eq!(s.recovered_entries, 2);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(store.load(10).expect("a"), a);
        assert_eq!(store.load(20).expect("b"), b);
        assert!(store.load(30).is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn newer_record_for_same_fingerprint_wins_on_recovery() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let old = sample_outcome(1, false);
        let new = sample_outcome(9, false);
        {
            let store = open_store(dir.path());
            store.put(42, &old);
            store.put(42, &new);
            store.flush();
        }
        let store = open_store(dir.path());
        assert_eq!(store.stats().recovered_entries, 1);
        assert_eq!(store.load(42).expect("value"), new);
    }

    #[test]
    fn corrupt_tail_is_truncated_and_counted_never_fatal() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let a = sample_outcome(1, true);
        {
            let store = open_store(dir.path());
            store.put(10, &a);
            store.flush();
        }
        // Simulate a crash mid-append: a record prefix with no payload.
        let log_path = dir.path().join(LOG_FILE);
        let clean_len = std::fs::metadata(&log_path).expect("meta").len();
        let torn = &encode_record(99, b"this payload never fully landed")[..20];
        let mut f = OpenOptions::new()
            .append(true)
            .open(&log_path)
            .expect("append");
        f.write_all(torn).expect("torn tail");
        drop(f);

        let store = open_store(dir.path());
        let s = store.stats();
        assert_eq!(s.recovered_entries, 1, "intact prefix recovered");
        assert_eq!(s.dropped_bytes, 20, "torn tail counted");
        assert_eq!(store.load(10).expect("survives"), a);
        assert_eq!(
            std::fs::metadata(&log_path).expect("meta").len(),
            clean_len,
            "log truncated back to the intact prefix"
        );
        // And the store keeps working: appends land after the truncation.
        let b = sample_outcome(3, false);
        store.put(11, &b);
        store.flush();
        drop(store);
        let store = open_store(dir.path());
        assert_eq!(store.stats().recovered_entries, 2);
        assert_eq!(store.load(11).expect("post-recovery append"), b);
    }

    #[test]
    fn foreign_or_stale_schema_file_is_reset_not_trusted() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        std::fs::write(dir.path().join(LOG_FILE), b"not a cell log at all, sorry")
            .expect("plant foreign file");
        let store = open_store(dir.path());
        let s = store.stats();
        assert_eq!(s.recovered_entries, 0);
        assert_eq!(s.dropped_bytes, 28);
        let a = sample_outcome(4, false);
        store.put(1, &a);
        store.flush();
        assert_eq!(store.load(1).expect("fresh log works"), a);
    }

    #[test]
    fn sidecar_index_accelerates_reopen_and_stale_sidecars_are_ignored() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        {
            let store = open_store(dir.path());
            for i in 0..5 {
                store.put(i, &sample_outcome(i, false));
            }
            store.flush();
            assert!(store.stats().index_writes >= 1, "flush snapshots the index");
        }
        {
            let store = open_store(dir.path());
            assert_eq!(store.stats().recovered_entries, 5);
        }
        // A corrupted sidecar must be ignored, not trusted: recovery
        // falls back to the full scan and still finds everything.
        let idx_path = dir.path().join(INDEX_FILE);
        let mut idx = std::fs::read(&idx_path).expect("sidecar exists");
        let mid = idx.len() / 2;
        idx[mid] ^= 0xFF;
        std::fs::write(&idx_path, &idx).expect("corrupt sidecar");
        let store = open_store(dir.path());
        assert_eq!(store.stats().recovered_entries, 5);
        assert!(store.load(3).is_some());
    }

    #[test]
    fn injected_append_error_rolls_back_and_never_poisons_the_log() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let faults = ScriptedFaults::new();
        // First append fails with ENOSPC, second succeeds.
        faults.script_append(Some(InjectedFault::Error(io::ErrorKind::StorageFull)));
        faults.script_append(None);
        let mut config = StoreConfig::new(dir.path());
        config.fsync = FsyncPolicy::Always;
        let store = CellStore::open(config, faults).expect("open");
        let a = sample_outcome(1, false);
        let b = sample_outcome(2, false);
        store.put(10, &a);
        store.put(11, &b);
        store.flush();
        let s = store.stats();
        assert_eq!(s.append_errors, 1, "ENOSPC counted");
        assert_eq!(s.appended, 1, "the other record landed");
        assert!(!s.degraded, "rollback succeeded; persistence continues");
        assert!(store.load(10).is_none(), "failed record is absent");
        assert_eq!(store.load(11).expect("clean record"), b);
        drop(store);
        // The log on disk is fully intact.
        let store = open_store(dir.path());
        assert_eq!(store.stats().recovered_entries, 1);
        assert_eq!(store.stats().dropped_bytes, 0);
    }

    #[test]
    fn injected_short_write_leaves_an_intact_prefix() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let faults = ScriptedFaults::new();
        faults.script_append(Some(InjectedFault::Short(9)));
        let mut config = StoreConfig::new(dir.path());
        config.fsync = FsyncPolicy::Always;
        let store = CellStore::open(config, faults).expect("open");
        store.put(10, &sample_outcome(1, false));
        let b = sample_outcome(2, false);
        store.put(11, &b);
        store.flush();
        let s = store.stats();
        assert_eq!(s.append_errors, 1);
        assert_eq!(s.appended, 1);
        assert!(!s.degraded);
        drop(store);
        let store = open_store(dir.path());
        let s = store.stats();
        assert_eq!(s.recovered_entries, 1, "only the clean record survives");
        assert_eq!(s.dropped_bytes, 0, "torn bytes were rewound, not left");
        assert_eq!(store.load(11).expect("clean record"), b);
    }

    #[test]
    fn failed_rewind_degrades_to_memory_only_without_crashing() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let faults = ScriptedFaults::new();
        faults.script_append(Some(InjectedFault::Short(5)));
        faults.script_truncate(Some(io::ErrorKind::PermissionDenied));
        let mut config = StoreConfig::new(dir.path());
        config.fsync = FsyncPolicy::Always;
        let store = CellStore::open(config, faults).expect("open");
        store.put(10, &sample_outcome(1, false));
        store.flush();
        assert!(store.stats().degraded);
        // Later puts are shed, not attempted.
        store.put(11, &sample_outcome(2, false));
        store.flush();
        let s = store.stats();
        assert!(s.shed >= 1, "degraded store sheds persistence");
        assert_eq!(s.appended, 0);
        drop(store);
        // Reopen recovers the intact prefix: header only, torn tail cut.
        let store = open_store(dir.path());
        let s = store.stats();
        assert_eq!(s.recovered_entries, 0);
        assert_eq!(s.dropped_bytes, 5, "torn bytes dropped at open");
    }

    #[test]
    fn injected_fsync_failure_is_counted_not_fatal() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let faults = ScriptedFaults::new();
        faults.script_fsync(Some(io::ErrorKind::Other));
        let mut config = StoreConfig::new(dir.path());
        config.fsync = FsyncPolicy::Always;
        let store = CellStore::open(config, faults).expect("open");
        let a = sample_outcome(1, false);
        store.put(10, &a);
        store.flush();
        let s = store.stats();
        assert!(s.fsync_errors >= 1);
        assert_eq!(s.appended, 1);
        assert!(!s.degraded);
        assert_eq!(store.load(10).expect("record readable"), a);
    }

    /// An [`IoFault`] that parks the persister inside its first append
    /// until released, simulating a disk that has stopped making
    /// progress. Injects nothing; it only controls timing.
    struct GateFault {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl GateFault {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                open: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn release(&self) {
            *self.open.lock().expect("gate lock") = true;
            self.cv.notify_all();
        }
    }

    impl IoFault for GateFault {
        fn on_append(&self, _record_len: usize) -> Option<InjectedFault> {
            let mut open = self.open.lock().expect("gate lock");
            while !*open {
                open = self.cv.wait(open).expect("gate lock");
            }
            None
        }
    }

    #[test]
    fn full_queue_sheds_writes_without_blocking() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let gate = GateFault::new();
        let mut config = StoreConfig::new(dir.path());
        config.queue_capacity = 1;
        config.fsync = FsyncPolicy::Off;
        let store = CellStore::open(config, Arc::clone(&gate) as Arc<dyn IoFault>).expect("open");
        let a = sample_outcome(1, true);
        // With the persister parked on the first record and one queue
        // slot, three puts cannot all fit: at least one must shed, and
        // none may block the caller.
        store.put(0, &a);
        store.put(1, &a);
        store.put(2, &a);
        gate.release();
        store.flush();
        let s = store.stats();
        assert_eq!(s.appended + s.shed, 3, "every put accounted for");
        assert!(s.shed >= 1, "a full queue sheds instead of blocking");
        assert!(s.appended >= 1, "the accepted records still land");
    }

    #[test]
    fn inspect_and_compact_drop_superseded_records_and_corrupt_tails() {
        let dir = TempDir::new("fo4depth-store").expect("temp dir");
        let newest = sample_outcome(5, false);
        {
            let store = open_store(dir.path());
            store.put(1, &sample_outcome(1, false));
            store.put(2, &sample_outcome(2, false));
            store.put(1, &sample_outcome(3, false));
            store.put(1, &newest);
            store.flush();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.path().join(LOG_FILE))
            .expect("append");
        f.write_all(&[0xAB; 13]).expect("garbage tail");
        drop(f);

        let report = inspect(dir.path(), true).expect("inspect");
        assert!(report.header_ok);
        assert_eq!(report.records, 4);
        assert_eq!(report.entries, 2);
        assert_eq!(report.corrupt_tail_bytes, 13);
        assert_eq!(report.payload_errors, 0);

        let compacted = compact(dir.path()).expect("compact");
        assert_eq!(compacted.entries, 2);
        assert_eq!(compacted.superseded_dropped, 2);
        assert_eq!(compacted.corrupt_tail_bytes, 13);
        assert!(compacted.bytes_after < compacted.bytes_before);

        // The compacted log opens clean and serves the latest values.
        let store = open_store(dir.path());
        let s = store.stats();
        assert_eq!(s.recovered_entries, 2);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(store.load(1).expect("winner"), newest);
        let after = inspect(dir.path(), true).expect("re-inspect");
        assert_eq!(after.records, 2);
        assert_eq!(after.corrupt_tail_bytes, 0);
    }
}
