//! `fo4depth serve` — the study's simulation-as-a-service daemon.
//!
//! A small, dependency-free HTTP/1.1 JSON server over `std::net` that
//! turns the offline sweep machinery into a long-lived service:
//!
//! * **Content-addressed caching** — requests are canonicalized and
//!   fingerprinted ([`api`]); responses, per-cell outcomes, and trace
//!   arenas are cached in bounded LRU tiers ([`cache`]), so a repeated
//!   Figure-4 sweep is a hash lookup and partially overlapping sweeps
//!   reuse each other's cells.
//! * **Request coalescing** — concurrent identical requests (at response
//!   or cell granularity) join one in-flight computation instead of
//!   duplicating it.
//! * **Backpressure** — a bounded connection queue sheds excess load with
//!   `429` + `Retry-After` instead of stacking unbounded work; per-socket
//!   timeouts and size caps ([`http`]) bound each accepted request.
//! * **Observability** — `GET /metrics` reports queue depth, worker and
//!   pool utilization, per-tier cache counters, and per-endpoint latency
//!   histograms ([`metrics`]).
//!
//! Simulation responses are byte-identical to their offline CLI
//! equivalents: both run through the same grid-cell code path
//! (`fo4depth_study::cells`) and the same deterministic JSON renderer.
//!
//! Shutdown is graceful: `SIGTERM`/`SIGINT` (or a [`ShutdownHandle`])
//! stop the accept loop, queued and in-flight requests drain, workers
//! join, and [`Server::run`] returns.

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod router;
pub mod store;

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fo4depth_util::{Json, JsonLimits};

use api::{
    ApiError, CellsRequest, Engine, RequestLimits, RingRequest, RunRequest, SweepRequest,
    YieldRequest,
};
use http::{
    error_body, read_request, write_error, write_response, ChunkedWriter, HttpError, Request,
};
use metrics::{cache_json, store_json, sweeps_json, yields_json, Endpoint, RequestMetrics};
use router::{Upstream, UpstreamConfig};
use store::{CellStore, FsyncPolicy, NoFault, StoreConfig};

/// Everything configurable about one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7634`.
    pub addr: String,
    /// Connection worker threads (simulation itself additionally fans out
    /// on the shared execution pool).
    pub workers: usize,
    /// Bounded pending-connection queue; beyond this, load is shed
    /// with `429`.
    pub queue_capacity: usize,
    /// Response-cache capacity (rendered bodies).
    pub response_entries: usize,
    /// Cell-cache capacity (per-`(core × benchmark × point)` outcomes).
    pub cell_entries: usize,
    /// Arena-cache capacity (materialized traces).
    pub arena_entries: usize,
    /// Request body cap in bytes.
    pub max_body: usize,
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
    /// Whole-request read deadline (head + body); a slowloris peer
    /// trickling bytes under `io_timeout` is cut off here.
    pub request_deadline: Duration,
    /// Request validation bounds.
    pub limits: RequestLimits,
    /// Directory for the persistent cell cache; `None` serves from
    /// memory only.
    pub cache_dir: Option<PathBuf>,
    /// Durability policy for persistent-cache appends.
    pub fsync: FsyncPolicy,
    /// Shard addresses (`host:port`). Empty means single-node serving;
    /// non-empty turns this instance into a router (`fo4depth route`)
    /// that scatters cold cells to the owning shards.
    pub shards: Vec<String>,
    /// Shard-tier tuning; consulted only when `shards` is non-empty.
    pub upstream: UpstreamConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7634".to_string(),
            workers: 4,
            queue_capacity: 64,
            response_entries: 256,
            cell_entries: 4096,
            arena_entries: 64,
            max_body: 1 << 20,
            io_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            limits: RequestLimits::default(),
            cache_dir: None,
            fsync: FsyncPolicy::default(),
            shards: Vec::new(),
            upstream: UpstreamConfig::default(),
        }
    }
}

/// Process-wide signal flag. Signal handlers may only touch
/// async-signal-safe state; a relaxed atomic store is exactly that.
static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::{AtomicBool, Ordering, SIGNALED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Routes `SIGINT` and `SIGTERM` into the shutdown flag. Installed
    /// once per process; re-installation is harmless.
    pub fn install() {
        static INSTALLED: AtomicBool = AtomicBool::new(false);
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: `signal(2)` with a plain function pointer whose body is
        // a single atomic store — the canonical async-signal-safe handler.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal routing off unix; ctrl-c terminates the process and a
    /// [`ShutdownHandle`](super::ShutdownHandle) remains available.
    pub fn install() {}
}

/// Shared server state: the engine, the bounded queue, and the counters.
struct State {
    config: ServeConfig,
    engine: Engine,
    metrics: RequestMetrics,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shed: AtomicU64,
    busy_workers: AtomicUsize,
    shutdown: AtomicBool,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALED.load(Ordering::Relaxed)
    }
}

/// A clonable remote control that stops a running [`Server`] the same way
/// `SIGTERM` does: stop accepting, drain, return.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<State>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue_cv.notify_all();
    }
}

/// One bound daemon instance.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the configured address.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = build_engine(&config)?;
        Ok(Self {
            listener,
            state: Arc::new(State {
                config,
                engine,
                metrics: RequestMetrics::new(),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                shed: AtomicU64::new(0),
                busy_workers: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The actually-bound address (resolves `:0` to the assigned port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until `SIGTERM`/`SIGINT` or a [`ShutdownHandle`] fires, then
    /// drains queued and in-flight requests and joins the workers.
    ///
    /// # Errors
    ///
    /// Returns socket-setup errors; per-connection failures are handled
    /// as error responses, not propagated.
    pub fn run(self) -> io::Result<()> {
        sig::install();
        // Nonblocking accept so the loop can poll the shutdown flag; a
        // pure blocking accept would pin us until the next connection.
        self.listener.set_nonblocking(true)?;

        // Router mode: a prober thread keeps the per-shard liveness
        // flags fresh so the scatter path prefers shards known to be up.
        let prober = self.state.engine.upstream().map(|_| {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("serve-prober".to_string())
                .spawn(move || {
                    let upstream = state.engine.upstream().expect("router state");
                    while !state.shutting_down() {
                        // A pass that panics (a poisoned lock, a broken
                        // resolver) must not silently kill the prober:
                        // frozen liveness flags would misroute forever.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            upstream.probe();
                        }));
                        // Sleep in short steps so shutdown is not held up
                        // by the probe interval.
                        let interval = upstream.probe_interval();
                        let mut slept = Duration::ZERO;
                        while slept < interval && !state.shutting_down() {
                            let step = Duration::from_millis(50).min(interval - slept);
                            std::thread::sleep(step);
                            slept += step;
                        }
                    }
                })
                .expect("spawn shard prober")
        });

        let workers: Vec<_> = (0..self.state.config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn connection worker")
            })
            .collect();

        while !self.state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => enqueue(&self.state, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => {
                    // Transient accept failure (e.g. aborted handshake).
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }

        // Drain: no new connections are accepted; workers finish the
        // queue (worker_loop only exits on shutdown AND empty queue).
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        if let Some(p) = prober {
            let _ = p.join();
        }
        // With the workers gone no new cell outcomes can be produced;
        // drain the write-behind queue so a clean shutdown leaves every
        // computed cell (and a fresh sidecar index) on disk.
        if let Some(cell_store) = self.state.engine.store() {
            cell_store.flush();
        }
        Ok(())
    }
}

/// Builds the engine a [`ServeConfig`] describes — cache tiers, optional
/// persistent store, optional shard tier. Shared by [`Server::bind`] and
/// embedded callers (the `fo4depth perf` shard harness drives a router
/// engine directly, without a listener).
///
/// Opening the store recovers whatever a previous process left:
/// corruption is truncated and counted, never fatal.
///
/// # Errors
///
/// Genuine store-environment failures (unreachable cache directory).
pub fn build_engine(config: &ServeConfig) -> io::Result<Engine> {
    let cell_store = match &config.cache_dir {
        Some(dir) => {
            let mut store_config = StoreConfig::new(dir);
            store_config.fsync = config.fsync;
            Some(Arc::new(CellStore::open(store_config, Arc::new(NoFault))?))
        }
        None => None,
    };
    let mut engine = Engine::with_store(
        config.response_entries,
        config.cell_entries,
        config.arena_entries,
        cell_store,
    );
    if !config.shards.is_empty() {
        engine = engine.with_upstream(Arc::new(Upstream::new(
            config.shards.clone(),
            config.upstream.clone(),
        )));
    }
    Ok(engine)
}

/// Admits a connection into the bounded queue or sheds it with `429`.
fn enqueue(state: &Arc<State>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let mut queue = state.queue.lock().expect("queue lock");
    if queue.len() >= state.config.queue_capacity {
        drop(queue);
        state.shed.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        write_response(
            &mut stream,
            429,
            &[("retry-after", "1")],
            error_body("queue_full", "server is at capacity; retry shortly").as_bytes(),
        );
        // Discard whatever request bytes already arrived: closing with
        // unread data makes the kernel RST the connection, which can
        // destroy the 429 before the peer reads it. Nonblocking, so a
        // slow peer cannot stall the accept loop.
        if stream.set_nonblocking(true).is_ok() {
            let mut scratch = [0u8; 1024];
            use std::io::Read as _;
            while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
        }
        state.metrics.record(Endpoint::Other, 429, 0);
        return;
    }
    queue.push_back(stream);
    drop(queue);
    state.queue_cv.notify_one();
}

/// Takes connections off the queue until shutdown, then drains what is
/// left and exits.
fn worker_loop(state: &Arc<State>) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if state.shutting_down() {
                    break None;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        let Some(mut stream) = stream else {
            return;
        };
        state.busy_workers.fetch_add(1, Ordering::SeqCst);
        handle_connection(state, &mut stream);
        state.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reads, routes, answers, and records requests on one connection until
/// it closes. A connection serves one request and closes by default; a
/// peer that sent `Connection: keep-alive` loops for the next request
/// after each successful response (the router's upstream pool rides
/// this), with a fresh read deadline per request. Error responses always
/// close — an errored exchange leaves no framing guarantees worth
/// preserving.
fn handle_connection(state: &State, stream: &mut TcpStream) {
    loop {
        let started = Instant::now();
        let request =
            match read_request(stream, state.config.max_body, state.config.request_deadline) {
                Ok(r) => r,
                Err(e) => {
                    // `CLOSED` is the peer going away between (or before)
                    // requests: nothing to answer, nothing to record.
                    if e.status != http::CLOSED {
                        write_error(stream, &e);
                        record(state, Endpoint::Other, e.status, started);
                    }
                    return;
                }
            };
        // During drain, answer the in-flight request but drop the
        // keep-alive so the connection (and its worker) winds down.
        let keep = request.keep_alive && !state.shutting_down();
        // The sweep and cells endpoints own their own delivery: their
        // bodies can leave as chunked fragments, which the buffered
        // `route` plumbing cannot express.
        let alive = if request.method == "POST" && request.path == "/v1/sweep" {
            let (status, alive) = handle_sweep(state, stream, &request, keep);
            record(state, Endpoint::Sweep, status, started);
            alive
        } else if request.method == "POST" && request.path == "/v1/cells" {
            let (status, alive) = handle_cells(state, stream, &request, keep);
            record(state, Endpoint::Cells, status, started);
            alive
        } else if request.method == "POST" && request.path == "/v1/yield" {
            let (status, alive) = handle_yield(state, stream, &request, keep);
            record(state, Endpoint::Yield, status, started);
            alive
        } else {
            let (endpoint, outcome) = route(state, &request);
            match outcome {
                Ok(body) => {
                    http::write_response_conn(stream, 200, &[], body.as_bytes(), keep);
                    record(state, endpoint, 200, started);
                    keep
                }
                Err(e) => {
                    write_error(stream, &e);
                    record(state, endpoint, e.status, started);
                    false
                }
            }
        };
        if !alive {
            return;
        }
    }
}

/// `POST /v1/sweep`, buffered or streamed. Returns the response status
/// and whether the connection remains reusable.
fn handle_sweep(
    state: &State,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> (u16, bool) {
    let req = match parse_body(state, request)
        .and_then(|doc| to_http(SweepRequest::from_json(&doc, &state.config.limits)))
    {
        Ok(req) => req,
        Err(e) => {
            write_error(stream, &e);
            return (e.status, false);
        }
    };
    if !req.stream {
        let body = state.engine.sweep_summary(&req);
        http::write_response_conn(stream, 200, &[], body.as_bytes(), keep);
        return (200, keep);
    }
    // Streamed delivery bypasses the response tier's single-flight (the
    // point is progress, not deduplication — and the cell tier still
    // dedups the actual simulation work underneath). The assembled body
    // is installed into the response cache afterwards, so a streamed
    // sweep warms its buffered twin: `stream` is excluded from the
    // fingerprint and both render the same bytes.
    let mut writer = ChunkedWriter::start_conn(stream, 200, &[], "application/json", keep);
    let body = state.engine.sweep_body(&req, true, &mut |frag| {
        writer.chunk(frag.as_bytes());
    });
    let delivered = !writer.failed();
    // Count the finished stream before the terminator goes out: the
    // instant the peer sees the end of the stream it may query /metrics,
    // and the completed stream must already be visible there.
    state.engine.sweeps.record_stream(writer.chunks());
    let (_, finished) = writer.finish();
    if delivered {
        state
            .engine
            .responses
            .insert(req.fingerprint("sweep"), Arc::new(body));
    }
    (200, keep && finished)
}

/// `POST /v1/yield`, buffered or streamed — the same delivery contract as
/// `/v1/sweep`: the streamed fragment sequence concatenates to the
/// buffered body byte for byte, and a delivered streamed body is
/// installed into the response tier so it warms its buffered twin.
fn handle_yield(
    state: &State,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> (u16, bool) {
    let req = match parse_body(state, request)
        .and_then(|doc| to_http(YieldRequest::from_json(&doc, &state.config.limits)))
    {
        Ok(req) => req,
        Err(e) => {
            if e.code == "invalid_distribution" {
                state
                    .engine
                    .yields
                    .invalid_distribution
                    .fetch_add(1, Ordering::Relaxed);
            }
            write_error(stream, &e);
            return (e.status, false);
        }
    };
    if !req.stream {
        let body = state.engine.yield_summary(&req);
        http::write_response_conn(stream, 200, &[], body.as_bytes(), keep);
        return (200, keep);
    }
    let mut writer = ChunkedWriter::start_conn(stream, 200, &[], "application/json", keep);
    let body = state.engine.yield_body(&req, true, &mut |frag| {
        writer.chunk(frag.as_bytes());
    });
    let delivered = !writer.failed();
    // Same ordering as `handle_sweep`: record before the terminator so a
    // peer that races straight to /metrics sees the finished stream.
    state.engine.yields.record_stream(writer.chunks());
    let (_, finished) = writer.finish();
    if delivered {
        state
            .engine
            .responses
            .insert(req.fingerprint(), Arc::new(body));
    }
    (200, keep && finished)
}

/// `POST /v1/cells` — the shard-internal scatter endpoint. The request
/// names a batch of cells; the response is the store codec's binary
/// framing ([`store::encode_record`] around a tagged outcome payload),
/// one CRC-guarded record per cell in request order, streamed as one
/// chunk per record. Routers decode with [`store::decode_record`] /
/// [`store::decode_outcome`] — the exact all-integer codec the
/// persistence tier already proves byte-faithful — so a gathered outcome
/// is bit-identical to a locally simulated one.
fn handle_cells(
    state: &State,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> (u16, bool) {
    let req = match parse_body(state, request)
        .and_then(|doc| to_http(CellsRequest::from_json(&doc, &state.config.limits)))
    {
        Ok(req) => req,
        Err(e) => {
            write_error(stream, &e);
            return (e.status, false);
        }
    };
    let outcomes = state.engine.fill_cells(&req.cells);
    let mut writer = ChunkedWriter::start_conn(stream, 200, &[], "application/octet-stream", keep);
    for (cell, outcome) in req.cells.iter().zip(&outcomes) {
        let payload = store::encode_outcome_tagged(outcome, Some(cell.core));
        if !writer.chunk(&store::encode_record(cell.fingerprint(), &payload)) {
            break;
        }
    }
    let (_, finished) = writer.finish();
    (200, keep && finished)
}

/// Parses a request body as JSON under the configured limits.
fn parse_body(state: &State, request: &Request) -> Result<Json, HttpError> {
    let json_limits = JsonLimits {
        max_bytes: state.config.max_body,
        ..JsonLimits::default()
    };
    Json::parse_bytes(&request.body, &json_limits).map_err(|e| HttpError {
        status: 400,
        code: "bad_json",
        message: e.to_string(),
    })
}

/// Lifts a validation failure into the HTTP error shape.
fn to_http<T>(r: Result<T, ApiError>) -> Result<T, HttpError> {
    r.map_err(|e| HttpError {
        status: e.status,
        code: e.code,
        message: e.message,
    })
}

fn record(state: &State, endpoint: Endpoint, status: u16, started: Instant) {
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.metrics.record(endpoint, status, elapsed_us);
}

/// Maps a request to its endpoint and response body.
fn route(state: &State, request: &Request) -> (Endpoint, Result<Arc<String>, HttpError>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/report") => (
            Endpoint::Report,
            simulate(state, request, |engine, doc, limits| {
                let req = SweepRequest::from_json(doc, limits)?;
                if req.stream {
                    return Err(ApiError {
                        status: 422,
                        code: "invalid_request",
                        message: "\"stream\" is only supported on /v1/sweep".to_string(),
                    });
                }
                Ok(engine.report(&req))
            }),
        ),
        // ("POST", "/v1/sweep") is intercepted in `handle_connection`.
        ("POST", "/v1/run") => (
            Endpoint::Run,
            simulate(state, request, |engine, doc, limits| {
                Ok(engine.run(&RunRequest::from_json(doc, limits)?))
            }),
        ),
        ("POST", "/v1/records") => (Endpoint::Records, install_records(state, request)),
        ("POST", "/v1/ring") => (Endpoint::Ring, ring_update(state, request)),
        ("GET", "/metrics") => (Endpoint::Metrics, Ok(Arc::new(metrics_body(state)))),
        // Router mode aggregates per-shard prober state so an external
        // load balancer can front multiple routers on this document;
        // a shard's own health stays the minimal liveness ack.
        ("GET", "/healthz") => (
            Endpoint::Health,
            Ok(Arc::new(match state.engine.upstream() {
                Some(upstream) => upstream.healthz_json().render(),
                None => Json::obj(vec![("status", Json::str("ok"))]).render(),
            })),
        ),
        (
            "GET" | "POST",
            "/v1/report" | "/v1/sweep" | "/v1/run" | "/v1/yield" | "/v1/records" | "/v1/ring"
            | "/metrics" | "/healthz",
        ) => (
            Endpoint::Other,
            Err(HttpError {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} is not supported on {}", request.method, request.path),
            }),
        ),
        _ => (
            Endpoint::Other,
            Err(HttpError {
                status: 404,
                code: "not_found",
                message: format!("no route for {}", request.path),
            }),
        ),
    }
}

/// `POST /v1/records` — the shard-internal replica-warming endpoint:
/// the body is a concatenation of the store codec's CRC-guarded binary
/// records (the exact bytes a `/v1/cells` gather delivers), installed
/// into this instance's cache tiers without simulating. Tolerance is
/// structural: an undecodable payload is rejected and skipped, an
/// unframeable tail is rejected wholesale — never a panic, never a
/// partial record installed (the CRC gate decides).
fn install_records(state: &State, request: &Request) -> Result<Arc<String>, HttpError> {
    if request.body.is_empty() {
        return Err(HttpError {
            status: 400,
            code: "bad_records",
            message: "a record push needs a non-empty binary body".to_string(),
        });
    }
    let (mut installed, mut rejected) = (0u64, 0u64);
    let mut rest: &[u8] = &request.body;
    while !rest.is_empty() {
        match store::decode_record(rest) {
            Ok((fingerprint, payload, used)) => {
                let decoded = store::payload_core(payload)
                    .and_then(|core| store::decode_outcome(payload).map(|o| (core, o)));
                match decoded {
                    Ok((core, outcome)) => {
                        state.engine.install_record(fingerprint, core, outcome);
                        installed += 1;
                    }
                    // A framed record with an undecodable payload (e.g.
                    // a stale schema version): skip it, keep the rest.
                    Err(_) => rejected += 1,
                }
                rest = &rest[used..];
            }
            Err(_) => {
                // The frame boundary itself is gone; nothing after this
                // point can be attributed to a record.
                rejected += 1;
                break;
            }
        }
    }
    Ok(Arc::new(
        Json::obj(vec![
            ("installed", Json::uint(installed)),
            ("rejected", Json::uint(rejected)),
        ])
        .render(),
    ))
}

/// `POST /v1/ring` — the router's membership admin endpoint: adds and
/// removes shard addresses as one ring rebuild, draining departing
/// shards before their pools drop. Rejected on non-router instances.
fn ring_update(state: &State, request: &Request) -> Result<Arc<String>, HttpError> {
    let Some(upstream) = state.engine.upstream() else {
        return Err(HttpError {
            status: 404,
            code: "not_found",
            message: "ring membership is a router endpoint".to_string(),
        });
    };
    let doc = parse_body(state, request)?;
    let req = to_http(RingRequest::from_json(&doc))?;
    match upstream.update_ring(&req.add, &req.remove) {
        Ok(update) => Ok(Arc::new(
            Json::obj(vec![
                (
                    "shards",
                    Json::Arr(update.shards.iter().map(Json::str).collect()),
                ),
                ("rebuilds", Json::uint(update.rebuilds)),
                ("drained", Json::uint(update.drained as u64)),
            ])
            .render(),
        )),
        Err(message) => Err(HttpError {
            status: 400,
            code: "bad_ring_update",
            message,
        }),
    }
}

/// Shared body-parse + validate + compute wrapper for the POST endpoints.
fn simulate(
    state: &State,
    request: &Request,
    f: impl FnOnce(&Engine, &Json, &RequestLimits) -> Result<Arc<String>, ApiError>,
) -> Result<Arc<String>, HttpError> {
    let doc = parse_body(state, request)?;
    to_http(f(&state.engine, &doc, &state.config.limits))
}

/// Renders the `/metrics` document.
fn metrics_body(state: &State) -> String {
    let queue_depth = state.queue.lock().expect("queue lock").len();
    let pool = fo4depth_exec::global().stats();
    let mut doc = vec![
        ("schema_version", Json::uint(1)),
        (
            "queue",
            Json::obj(vec![
                ("depth", Json::uint(queue_depth as u64)),
                ("capacity", Json::uint(state.config.queue_capacity as u64)),
                ("shed", Json::uint(state.shed.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "workers",
            Json::obj(vec![
                (
                    "connection",
                    Json::obj(vec![
                        ("total", Json::uint(state.config.workers.max(1) as u64)),
                        (
                            "busy",
                            Json::uint(state.busy_workers.load(Ordering::SeqCst) as u64),
                        ),
                    ]),
                ),
                (
                    "pool",
                    Json::obj(vec![
                        ("threads", Json::uint(pool.threads as u64)),
                        ("busy", Json::uint(pool.busy as u64)),
                        ("tasks_executed", Json::uint(pool.tasks_executed)),
                        ("batches_submitted", Json::uint(pool.batches_submitted)),
                    ]),
                ),
            ]),
        ),
        (
            "caches",
            Json::obj({
                let mut tiers = vec![
                    ("responses", cache_json(&state.engine.responses.stats())),
                    ("cells", cache_json(&state.engine.cells.stats())),
                    ("arenas", cache_json(&state.engine.arenas.stats())),
                ];
                if let Some(cell_store) = state.engine.store() {
                    tiers.push(("persistent", store_json(&cell_store.stats())));
                }
                tiers
            }),
        ),
        ("sweeps", sweeps_json(&state.engine.sweeps)),
        ("yield", yields_json(&state.engine.yields)),
    ];
    // Router mode: the shard tier's per-shard routing counters and
    // failover accounting join the document.
    if let Some(upstream) = state.engine.upstream() {
        doc.push(("router", upstream.metrics_json()));
    }
    doc.push(("endpoints", state.metrics.to_json()));
    Json::obj(doc).pretty()
}
