//! A bounded content-addressed cache with LRU eviction and in-flight
//! request coalescing.
//!
//! Keys are 64-bit content fingerprints (see
//! [`fo4depth_study::cells::CellSpec::fingerprint`] and the request
//! fingerprints in [`crate::api`]); values are cheaply clonable handles
//! (`Arc<…>`). Two properties matter for a simulation cache and are easy
//! to get wrong with an off-the-shelf map:
//!
//! * **Coalescing.** [`Cache::get_or_compute`] guarantees at most one
//!   computation per key is ever in flight: concurrent callers with the
//!   same key block on the first caller's computation and share its
//!   result, so N identical requests cost one simulation, not N.
//! * **Bounded memory.** Completed entries are capped at `capacity` and
//!   evicted least-recently-used. In-flight computations are tracked
//!   separately and are never evicted (a waiter must always find its
//!   producer); admission control upstream bounds how many can exist.
//!
//! Every transition is counted — hits, misses, coalesced waits,
//! evictions — so `/metrics` can report cache effectiveness exactly.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

/// Counter snapshot of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Completed entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups served from a completed entry.
    pub hits: u64,
    /// Lookups that started a computation.
    pub misses: u64,
    /// Lookups that joined another caller's in-flight computation.
    pub coalesced: u64,
    /// Completed entries displaced by LRU pressure.
    pub evictions: u64,
}

/// State of one in-flight computation.
enum PendingState<V> {
    /// The producer is still computing.
    Running,
    /// The producer finished; waiters take the value.
    Done(V),
    /// The producer panicked; waiters retry from scratch.
    Failed,
}

struct Pending<V> {
    state: Mutex<PendingState<V>>,
    done: Condvar,
}

struct Ready<V> {
    value: V,
    /// LRU timestamp: the key's position in `Inner::order`.
    tick: u64,
}

struct Inner<V> {
    capacity: usize,
    clock: u64,
    ready: HashMap<u64, Ready<V>>,
    /// `tick → key`, ordered oldest-first for O(log n) eviction.
    order: BTreeMap<u64, u64>,
    pending: HashMap<u64, Arc<Pending<V>>>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

impl<V: Clone> Inner<V> {
    /// Inserts a completed value, evicting the least-recently-used entry
    /// if the cache is full. With `capacity == 0` nothing is retained
    /// (the cache still coalesces, it just never remembers).
    fn insert_ready(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.ready.contains_key(&key) {
            // A racing producer for the same key already stored it; keep
            // the resident entry and its recency.
            return;
        }
        while self.ready.len() >= self.capacity {
            let (&tick, &victim) = self.order.iter().next().expect("order tracks ready");
            self.order.remove(&tick);
            self.ready.remove(&victim);
            self.evictions += 1;
        }
        self.clock += 1;
        self.order.insert(self.clock, key);
        self.ready.insert(
            key,
            Ready {
                value,
                tick: self.clock,
            },
        );
    }

    /// Refreshes `key`'s recency.
    fn touch(&mut self, key: u64) {
        let Some(entry) = self.ready.get_mut(&key) else {
            return;
        };
        self.order.remove(&entry.tick);
        self.clock += 1;
        entry.tick = self.clock;
        self.order.insert(self.clock, key);
    }
}

/// What a lookup resolved to, decided under the cache lock.
enum Claim<V> {
    Hit(V),
    Wait(Arc<Pending<V>>),
    Compute(Arc<Pending<V>>),
}

/// A bounded LRU cache of content-addressed computation results with
/// single-flight coalescing.
pub struct Cache<V> {
    inner: Mutex<Inner<V>>,
}

impl<V: Clone> Cache<V> {
    /// An empty cache holding at most `capacity` completed entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity,
                clock: 0,
                ready: HashMap::new(),
                order: BTreeMap::new(),
                pending: HashMap::new(),
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
            }),
        }
    }

    /// Returns the value for `key`, computing it with `f` on a miss.
    ///
    /// At most one caller runs `f` per key at a time; concurrent callers
    /// block until that computation finishes and share its result. If the
    /// producer panics, one blocked waiter takes over the computation
    /// (the panic still propagates on the producing thread).
    pub fn get_or_compute(&self, key: u64, f: impl Fn() -> V) -> V {
        self.get_or_compute_tiered(key, || None, f)
    }

    /// [`Cache::get_or_compute`] with a read-through tier between the LRU
    /// and the computation: on an LRU miss the winning caller first asks
    /// `load` (e.g. the persistent store) and only falls back to `f` when
    /// `load` has nothing. Either way the value is installed in the LRU
    /// and shared with every coalesced waiter, so `load`/`f` keep the
    /// same single-flight guarantee as `f` alone.
    pub fn get_or_compute_tiered(
        &self,
        key: u64,
        mut load: impl FnMut() -> Option<V>,
        mut f: impl FnMut() -> V,
    ) -> V {
        loop {
            let claim = {
                let mut inner = self.inner.lock().expect("cache lock");
                if inner.ready.contains_key(&key) {
                    inner.hits += 1;
                    inner.touch(key);
                    Claim::Hit(inner.ready[&key].value.clone())
                } else if let Some(p) = inner.pending.get(&key).map(Arc::clone) {
                    inner.coalesced += 1;
                    Claim::Wait(p)
                } else {
                    inner.misses += 1;
                    let p = Arc::new(Pending {
                        state: Mutex::new(PendingState::Running),
                        done: Condvar::new(),
                    });
                    inner.pending.insert(key, Arc::clone(&p));
                    Claim::Compute(p)
                }
            };
            match claim {
                Claim::Hit(v) => return v,
                Claim::Wait(p) => {
                    let mut state = p.state.lock().expect("pending lock");
                    loop {
                        match &*state {
                            PendingState::Running => {
                                state = p.done.wait(state).expect("pending lock");
                            }
                            PendingState::Done(v) => return v.clone(),
                            // Producer died: retry the whole lookup (the
                            // failed pending entry is already unlinked).
                            PendingState::Failed => break,
                        }
                    }
                }
                Claim::Compute(p) => {
                    // Unwind-safe completion: whatever happens to `f`, the
                    // pending entry is unlinked and waiters are woken.
                    struct Guard<'a, V> {
                        cache: &'a Cache<V>,
                        pending: &'a Pending<V>,
                        key: u64,
                        finished: bool,
                    }
                    impl<V> Drop for Guard<'_, V> {
                        fn drop(&mut self) {
                            if !self.finished {
                                let mut inner = self.cache.inner.lock().expect("cache lock");
                                inner.pending.remove(&self.key);
                                drop(inner);
                                let mut state = self.pending.state.lock().expect("pending lock");
                                *state = PendingState::Failed;
                                self.pending.done.notify_all();
                            }
                        }
                    }
                    let mut guard = Guard {
                        cache: self,
                        pending: &p,
                        key,
                        finished: false,
                    };
                    let value = load().unwrap_or_else(&mut f);
                    guard.finished = true;
                    let mut inner = self.inner.lock().expect("cache lock");
                    inner.pending.remove(&key);
                    inner.insert_ready(key, value.clone());
                    drop(inner);
                    let mut state = p.state.lock().expect("pending lock");
                    *state = PendingState::Done(value.clone());
                    p.done.notify_all();
                    return value;
                }
            }
        }
    }

    /// Installs a completed value without counting a lookup — the batched
    /// sweep path probes with [`Cache::get`] (which already counted the
    /// miss), computes the cold cells as one lane batch, and installs the
    /// results here. Idempotent: a racing resident entry keeps its value
    /// and recency, exactly as in [`Inner::insert_ready`].
    pub fn insert(&self, key: u64, value: V) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.insert_ready(key, value);
    }

    /// Looks up `key` without computing, refreshing recency on a hit.
    /// Counts as a hit or miss.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.ready.contains_key(&key) {
            inner.hits += 1;
            inner.touch(key);
            Some(inner.ready[&key].value.clone())
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.ready.len(),
            capacity: inner.capacity,
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn hit_after_miss_returns_cached_value_without_recompute() {
        let cache: Cache<Arc<u64>> = Cache::new(8);
        let computed = AtomicU64::new(0);
        let f = || {
            computed.fetch_add(1, Ordering::SeqCst);
            Arc::new(41)
        };
        assert_eq!(*cache.get_or_compute(1, f), 41);
        assert_eq!(*cache.get_or_compute(1, f), 41);
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used_in_order() {
        let cache: Cache<Arc<u64>> = Cache::new(2);
        cache.get_or_compute(1, || Arc::new(1));
        cache.get_or_compute(2, || Arc::new(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.get_or_compute(3, || Arc::new(3));
        assert!(cache.get(1).is_some(), "recently used survives");
        assert!(cache.get(2).is_none(), "LRU victim evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_never_retains_but_still_counts() {
        let cache: Cache<Arc<u64>> = Cache::new(0);
        let computed = AtomicU64::new(0);
        let f = || {
            computed.fetch_add(1, Ordering::SeqCst);
            Arc::new(7)
        };
        cache.get_or_compute(1, f);
        cache.get_or_compute(1, f);
        assert_eq!(computed.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_identical_keys_coalesce_to_one_computation() {
        let cache: Arc<Cache<Arc<u64>>> = Arc::new(Cache::new(8));
        let computed = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                std::thread::spawn(move || {
                    *cache.get_or_compute(42, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Hold the computation open long enough for the
                        // other threads to arrive and coalesce.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Arc::new(99)
                    })
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("thread"), 99);
        }
        assert_eq!(
            computed.load(Ordering::SeqCst),
            1,
            "exactly one computation for 8 concurrent identical requests"
        );
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.coalesced, 7);
    }

    #[test]
    fn failed_computation_unblocks_waiters_and_allows_retry() {
        let cache: Arc<Cache<Arc<u64>>> = Arc::new(Cache::new(8));
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(5, || panic!("producer dies"))
            }));
            assert!(result.is_err());
        });
        panicker.join().expect("panicking producer joined");
        // The key is fully unlinked; a later caller recomputes cleanly.
        assert_eq!(*cache.get_or_compute(5, || Arc::new(6)), 6);
    }
}
