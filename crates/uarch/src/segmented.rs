//! The segmented instruction issue window — the paper's §5 contribution.
//!
//! **Wakeup (Figure 10).** The window is cut into stages separated by
//! latches. A set of destination tags is broadcast to one stage per cycle,
//! so an instruction sitting in stage *k* (stage 0 = the oldest end) learns
//! of a result *k* cycles after the first stage does. Dependent
//! instructions can still issue back-to-back — but only if the consumer is
//! in stage 0.
//!
//! **Collapsing.** "The instruction window adjusts its contents at the
//! beginning of every cycle so that the older instructions collect to one
//! end" — entries are kept age-ordered and stage membership is recomputed
//! from position, so instructions migrate toward stage 0 as older entries
//! drain.
//!
//! **Select (Figure 12).** Conventionally the select logic examines every
//! entry. The segmented select partitions it: a pre-selection block per
//! non-first stage picks at most a quota of ready instructions (stage 2: 5,
//! stage 3: 2, stage 4: 1 in the paper's 32-entry/4-stage instance) and
//! latches them; the final select (fan-in 16: 8 stage-1 slots plus 7
//! latched plus margin) chooses the 4 to issue. Pre-selected instructions
//! therefore issue one cycle later than stage-0 instructions — the cost
//! the paper measures at −4 % integer / −1 % FP IPC.

use serde::{Deserialize, Serialize};

use crate::window::{IssueBudget, WindowEntry, WindowModel};

/// How selection treats entries outside the first stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectMode {
    /// All entries are candidates every cycle (the Figure 11 idealization:
    /// "assuming all entries in the window can be considered for
    /// selection").
    Ideal,
    /// Quota-limited pre-selection per non-first stage (Figure 12). The
    /// quota vector gives the maximum pre-selected instructions for stages
    /// 1, 2, 3, … (stage 0 is always fully considered); pre-selected
    /// instructions issue with one extra cycle of latency.
    PreSelect {
        /// Per-stage quotas, oldest non-first stage first.
        quotas: Vec<u32>,
    },
}

impl SelectMode {
    /// The paper's Figure 12 configuration for a 32-entry, 4-stage window:
    /// quotas 5 / 2 / 1 and a stage-1 fan-in of 16.
    #[must_use]
    pub fn figure12() -> Self {
        SelectMode::PreSelect {
            quotas: vec![5, 2, 1],
        }
    }
}

/// The segmented issue window.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::segmented::{SegmentedWindow, SelectMode};
/// use fo4depth_uarch::window::{IssueBudget, IssuePort, WindowEntry, WindowModel};
///
/// let mut w = SegmentedWindow::new(32, 4, SelectMode::Ideal);
/// w.insert(WindowEntry { seq: 0, port: IssuePort::Int, ready_at: 0 });
/// let mut b = IssueBudget::alpha_like();
/// assert_eq!(w.select(0, &mut b).len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentedWindow {
    entries: Vec<WindowEntry>,
    capacity: usize,
    stages: usize,
    stage_size: usize,
    mode: SelectMode,
}

impl SegmentedWindow {
    /// Creates a `capacity`-entry window pipelined into `stages` stages.
    /// When `capacity` is not divisible by `stages`, the final stage is the
    /// short one (stage size rounds up), matching how a designer would cut
    /// an odd-sized window.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero, `capacity` is zero, or `stages` exceeds
    /// `capacity`.
    #[must_use]
    pub fn new(capacity: usize, stages: usize, mode: SelectMode) -> Self {
        assert!(capacity > 0 && stages > 0, "degenerate window");
        assert!(stages <= capacity, "more stages than entries");
        if let SelectMode::PreSelect { quotas } = &mode {
            assert_eq!(
                quotas.len(),
                stages - 1,
                "need one quota per non-first stage"
            );
        }
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            stages,
            stage_size: capacity.div_ceil(stages),
            mode,
        }
    }

    /// Number of pipeline stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Stage of the entry at `position` (0 = oldest stage).
    fn stage_of(&self, position: usize) -> usize {
        position / self.stage_size
    }

    /// The cycle at which the entry at `position` perceives its readiness:
    /// tags reach stage *k* after *k* extra cycles.
    fn perceived_ready(&self, position: usize) -> u64 {
        let e = &self.entries[position];
        e.ready_at.saturating_add(self.stage_of(position) as u64)
    }

    /// Observation: whether the entry at `position` asserts readiness to
    /// the (final) select block at `now`, ignoring pre-select quotas —
    /// quota losers are arbitration victims, which the observing core
    /// charges as contention rather than dependency wait.
    fn select_visible(&self, position: usize, now: u64) -> bool {
        match &self.mode {
            SelectMode::Ideal => self.perceived_ready(position) <= now,
            SelectMode::PreSelect { .. } => {
                let extra = u64::from(self.stage_of(position) != 0);
                self.perceived_ready(position).saturating_add(extra) <= now
            }
        }
    }
}

impl WindowModel for SegmentedWindow {
    fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn insert(&mut self, entry: WindowEntry) {
        assert!(self.has_space(), "window full");
        debug_assert!(
            self.entries.last().is_none_or(|e| e.seq < entry.seq),
            "window insertion out of program order"
        );
        self.entries.push(entry);
    }

    fn set_ready(&mut self, seq: u64, ready_at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.ready_at = e.ready_at.min(ready_at);
        }
    }

    fn select_into(&mut self, now: u64, budget: &mut IssueBudget, out: &mut Vec<WindowEntry>) {
        out.extend(self.select(now, budget));
    }

    fn select(&mut self, now: u64, budget: &mut IssueBudget) -> Vec<WindowEntry> {
        // Candidate positions this cycle, oldest first, respecting the
        // select organization.
        let mut candidates: Vec<usize> = Vec::new();
        match &self.mode {
            SelectMode::Ideal => {
                for pos in 0..self.entries.len() {
                    if self.perceived_ready(pos) <= now {
                        candidates.push(pos);
                    }
                }
            }
            SelectMode::PreSelect { quotas } => {
                let mut used = vec![0u32; quotas.len()];
                for pos in 0..self.entries.len() {
                    let stage = self.stage_of(pos);
                    if stage == 0 {
                        // Fully examined by the final select block.
                        if self.perceived_ready(pos) <= now {
                            candidates.push(pos);
                        }
                    } else {
                        // Pre-selected a cycle earlier: must have been ready
                        // then, and must fit the stage's quota.
                        let q = &mut used[stage - 1];
                        if *q < quotas[stage - 1]
                            && self.perceived_ready(pos).saturating_add(1) <= now
                        {
                            *q += 1;
                            candidates.push(pos);
                        }
                    }
                }
            }
        }

        let mut out = Vec::new();
        let mut removed = Vec::new();
        for pos in candidates {
            if budget.total == 0 {
                break;
            }
            let e = self.entries[pos];
            if budget.take(e.port) {
                out.push(e);
                removed.push(pos);
            }
        }
        // Remove issued entries (descending positions keep indices valid);
        // remaining entries collapse toward stage 0 automatically.
        for pos in removed.into_iter().rev() {
            self.entries.remove(pos);
        }
        out
    }

    fn visible_ready(&self, now: u64) -> usize {
        (0..self.entries.len())
            .filter(|&pos| self.select_visible(pos, now))
            .count()
    }

    fn oldest_waiting(&self, now: u64) -> Option<WindowEntry> {
        (0..self.entries.len())
            .find(|&pos| !self.select_visible(pos, now))
            .map(|pos| self.entries[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::IssuePort;

    fn entry(seq: u64, ready: u64) -> WindowEntry {
        WindowEntry {
            seq,
            port: IssuePort::Int,
            ready_at: ready,
        }
    }

    fn drain(w: &mut SegmentedWindow, now: u64) -> Vec<u64> {
        let mut b = IssueBudget::alpha_like();
        w.select(now, &mut b).iter().map(|e| e.seq).collect()
    }

    #[test]
    fn one_stage_equals_conventional() {
        let mut w = SegmentedWindow::new(8, 1, SelectMode::Ideal);
        w.insert(entry(0, 3));
        assert!(drain(&mut w, 2).is_empty());
        assert_eq!(drain(&mut w, 3), vec![0]);
    }

    #[test]
    fn later_stages_wake_later() {
        // 8 entries, 4 stages of 2. Entry at position 4 (stage 2) with
        // ready_at = 0 is perceived ready at cycle 2.
        let mut w = SegmentedWindow::new(8, 4, SelectMode::Ideal);
        for s in 0..5 {
            w.insert(entry(s, if s == 4 { 0 } else { 100 }));
        }
        assert!(drain(&mut w, 0).is_empty(), "stage-2 entry not visible yet");
        assert!(drain(&mut w, 1).is_empty());
        assert_eq!(drain(&mut w, 2), vec![4]);
    }

    #[test]
    fn collapsing_promotes_younger_entries() {
        // 8 entries, 4 stages of 2: entry 2 starts at position 2 = stage 1,
        // so it is invisible at cycle 0 (perceived ready 0 + 1 = 1).
        let mut w = SegmentedWindow::new(8, 4, SelectMode::Ideal);
        w.insert(entry(0, 0));
        w.insert(entry(1, 0));
        w.insert(entry(2, 0));
        assert_eq!(drain(&mut w, 0), vec![0, 1]);
        // After the older pair issues, entry 2 collapses into stage 0 and
        // issues with no staging delay at the same nominal cycle.
        assert_eq!(drain(&mut w, 0), vec![2]);
    }

    #[test]
    fn preselect_quotas_limit_non_first_stages() {
        // 8 entries, 2 stages of 4, quota 1 for stage 1.
        let mut w = SegmentedWindow::new(8, 2, SelectMode::PreSelect { quotas: vec![1] });
        // Fill stage 0 with never-ready entries, stage 1 with ready ones.
        for s in 0..4 {
            w.insert(entry(s, 1000));
        }
        for s in 4..8 {
            w.insert(entry(s, 0));
        }
        // At cycle 1 (ready since 0 ⇒ perceived at 1, +1 for pre-select at
        // 2)… readiness: perceived_ready = 0 + 1 (stage) = 1; pre-selected
        // entries need perceived + 1 <= now ⇒ now >= 2.
        assert!(drain(&mut w, 1).is_empty());
        let picked = drain(&mut w, 2);
        assert_eq!(picked, vec![4], "quota of 1 admits only the oldest");
    }

    #[test]
    fn preselect_stage0_has_no_extra_latency() {
        let mut w = SegmentedWindow::new(8, 2, SelectMode::PreSelect { quotas: vec![5] });
        w.insert(entry(0, 7));
        assert!(drain(&mut w, 6).is_empty());
        assert_eq!(drain(&mut w, 7), vec![0]);
    }

    #[test]
    fn figure12_quotas() {
        let SelectMode::PreSelect { quotas } = SelectMode::figure12() else {
            panic!("figure12 must be PreSelect");
        };
        assert_eq!(quotas, vec![5, 2, 1]);
    }

    #[test]
    fn ragged_staging_rounds_stage_size_up() {
        let w = SegmentedWindow::new(10, 4, SelectMode::Ideal);
        assert_eq!(w.stages(), 4);
        // 10 entries over 4 stages → stage size 3 (last stage holds 1).
        assert_eq!(w.stage_of(9), 3);
    }

    #[test]
    #[should_panic(expected = "more stages than entries")]
    fn rejects_more_stages_than_entries() {
        let _ = SegmentedWindow::new(4, 8, SelectMode::Ideal);
    }

    #[test]
    #[should_panic(expected = "one quota per non-first stage")]
    fn rejects_wrong_quota_count() {
        let _ = SegmentedWindow::new(8, 4, SelectMode::PreSelect { quotas: vec![1] });
    }
}
