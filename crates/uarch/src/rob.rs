//! The reorder buffer: in-order allocation and commit.

use serde::{Deserialize, Serialize};

/// One in-flight instruction's retirement bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobEntry {
    /// The instruction's dynamic sequence number.
    pub seq: u64,
    /// Cycle at which the instruction's result is architecturally complete
    /// (`u64::MAX` until it executes).
    pub complete_at: u64,
    /// Physical register to free at commit (the *previous* mapping of the
    /// destination), if any.
    pub free_on_commit: Option<u32>,
}

/// A bounded in-order reorder buffer.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::rob::ReorderBuffer;
/// let mut rob = ReorderBuffer::new(4);
/// let idx = rob.allocate(0, None).unwrap();
/// rob.complete(idx, 10);
/// assert_eq!(rob.commit_ready(10, 4).len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReorderBuffer {
    entries: std::collections::VecDeque<RobEntry>,
    capacity: usize,
    next_committed_seq: u64,
}

impl ReorderBuffer {
    /// Creates a buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB must have capacity");
        Self {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            next_committed_seq: 0,
        }
    }

    /// Whether another instruction can be allocated.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates an entry for `seq` (entries must be allocated in
    /// program order). Returns a handle for [`complete`](Self::complete),
    /// or `None` when full.
    pub fn allocate(&mut self, seq: u64, free_on_commit: Option<u32>) -> Option<u64> {
        if !self.has_space() {
            return None;
        }
        if let Some(back) = self.entries.back() {
            assert!(back.seq < seq, "ROB allocation out of program order");
        }
        self.entries.push_back(RobEntry {
            seq,
            complete_at: u64::MAX,
            free_on_commit,
        });
        Some(seq)
    }

    /// Marks `seq` complete at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in the buffer.
    pub fn complete(&mut self, seq: u64, cycle: u64) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("completing unknown ROB entry");
        e.complete_at = e.complete_at.min(cycle);
    }

    /// [`ReorderBuffer::complete`] with an O(1) fast path: cores allocate
    /// every fetched instruction, so occupied entries almost always carry
    /// contiguous sequence numbers and `seq` sits at offset
    /// `seq - front.seq`. Falls back to the scan when the guess misses
    /// (sparse allocation, as some unit tests exercise). Identical
    /// observable behaviour to [`ReorderBuffer::complete`]; the batched
    /// engine uses this, the scalar reference keeps the plain scan.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in the buffer.
    pub fn complete_indexed(&mut self, seq: u64, cycle: u64) {
        if let Some(front) = self.entries.front() {
            if let Some(idx) = seq.checked_sub(front.seq) {
                if let Some(e) = self.entries.get_mut(idx as usize) {
                    if e.seq == seq {
                        e.complete_at = e.complete_at.min(cycle);
                        return;
                    }
                }
            }
        }
        self.complete(seq, cycle);
    }

    /// Completion cycle of the head entry (`u64::MAX` until it executes),
    /// or `None` when the buffer is empty. The earliest cycle at which the
    /// next commit can possibly happen — idle-cycle coalescing uses it as
    /// one bound on how far the clock may safely jump.
    #[must_use]
    pub fn head_complete_at(&self) -> Option<u64> {
        self.entries.front().map(|e| e.complete_at)
    }

    /// Pops up to `width` head entries whose results are complete by
    /// `cycle`, returning them in commit order.
    #[must_use]
    pub fn commit_ready(&mut self, cycle: u64, width: usize) -> Vec<RobEntry> {
        let mut out = Vec::new();
        self.commit_ready_into(cycle, width, &mut out);
        out
    }

    /// [`commit_ready`](Self::commit_ready) into a caller-owned buffer
    /// (appended, not cleared); cores reuse one buffer across cycles to
    /// keep the commit stage allocation-free.
    pub fn commit_ready_into(&mut self, cycle: u64, width: usize, out: &mut Vec<RobEntry>) {
        let mut popped = 0;
        while popped < width {
            match self.entries.front() {
                Some(head) if head.complete_at <= cycle => {
                    let e = self.entries.pop_front().expect("checked front");
                    self.next_committed_seq = e.seq + 1;
                    out.push(e);
                    popped += 1;
                }
                _ => break,
            }
        }
    }

    /// Sequence number of the next instruction to commit.
    #[must_use]
    pub fn next_commit_seq(&self) -> u64 {
        self.entries
            .front()
            .map_or(self.next_committed_seq, |e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_is_in_order_even_when_completion_is_not() {
        let mut rob = ReorderBuffer::new(8);
        rob.allocate(0, None).unwrap();
        rob.allocate(1, None).unwrap();
        rob.allocate(2, None).unwrap();
        // Younger completes first.
        rob.complete(2, 5);
        rob.complete(1, 6);
        rob.complete(0, 9);
        assert!(rob.commit_ready(8, 4).is_empty(), "head not yet complete");
        let committed = rob.commit_ready(9, 4);
        let seqs: Vec<u64> = committed.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn commit_width_limits() {
        let mut rob = ReorderBuffer::new(8);
        for s in 0..6 {
            rob.allocate(s, None).unwrap();
            rob.complete(s, 1);
        }
        assert_eq!(rob.commit_ready(1, 4).len(), 4);
        assert_eq!(rob.commit_ready(1, 4).len(), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rob = ReorderBuffer::new(2);
        assert!(rob.allocate(0, None).is_some());
        assert!(rob.allocate(1, None).is_some());
        assert!(rob.allocate(2, None).is_none());
        rob.complete(0, 0);
        let _ = rob.commit_ready(0, 1);
        assert!(rob.allocate(2, None).is_some());
    }

    #[test]
    fn free_on_commit_travels_with_entry() {
        let mut rob = ReorderBuffer::new(2);
        rob.allocate(0, Some(77)).unwrap();
        rob.complete(0, 3);
        let done = rob.commit_ready(3, 1);
        assert_eq!(done[0].free_on_commit, Some(77));
    }

    #[test]
    #[should_panic(expected = "out of program order")]
    fn rejects_out_of_order_allocation() {
        let mut rob = ReorderBuffer::new(4);
        rob.allocate(5, None).unwrap();
        rob.allocate(3, None).unwrap();
    }
}
