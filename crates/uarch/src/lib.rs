//! Microarchitecture component library for the fo4depth pipeline models.
//!
//! Each module is an independently testable component of the
//! Alpha-21264-class machine the paper scales:
//!
//! * [`branch`] — branch direction predictors (bimodal, gshare, local
//!   two-level, and the 21264's tournament predictor) plus a small BTB.
//! * [`cache`] — set-associative cache models and a two-level hierarchy
//!   with a flat memory behind it (including the CRAY-1S-style
//!   caches-disabled mode of the paper's §4.2).
//! * [`rename`] — register rename map with a physical-register free list.
//! * [`rob`] — the reorder buffer.
//! * [`window`] — the conventional instruction issue window (single-cycle
//!   or multi-cycle wakeup, oldest-first select).
//! * [`segmented`] — the paper's §5 contribution: the segmented issue
//!   window with staged tag broadcast (Figure 10) and quota-limited
//!   pre-selection (Figure 12).
//! * [`speculative`] — the grandparent-wakeup pipelined scheduler of
//!   Stark, Brown & Patt, the §6 point of comparison.
//! * [`lsq`] — load/store queue with store-to-load forwarding.
//! * [`observe`] — the observation plumbing: occupancy histograms and the
//!   `Observer` sink trait the cores stream per-cycle samples into.
//! * [`fu`] — functional-unit pool with per-class issue slots and
//!   latencies.
//!
//! Components speak in plain `u64` cycle numbers and `i64`/`u32` sizes; the
//! clock-scaling logic that decides *how many* cycles each structure costs
//! lives in `fo4depth-study`.

pub mod branch;
pub mod cache;
pub mod fu;
pub mod lsq;
pub mod observe;
pub mod rename;
pub mod rob;
pub mod segmented;
pub mod speculative;
pub mod window;

pub use branch::{
    Bimodal, BranchPredictor, Btb, BtbStats, Gshare, LocalTwoLevel, Perceptron, Tournament,
};
pub use cache::{Cache, CacheStats, Hierarchy, HierarchyConfig};
pub use fu::{FuClass, FuPool, FuPoolConfig};
pub use lsq::LoadStoreQueue;
pub use observe::{Observer, OccupancyHist, Structure};
pub use rename::{RenameMap, RenameStall};
pub use rob::{ReorderBuffer, RobEntry};
pub use segmented::{SegmentedWindow, SelectMode};
pub use speculative::SpeculativeWindow;
pub use window::{IssueBudget, WindowEntry, WindowModel};
