//! Observation plumbing for the microarchitectural structures.
//!
//! The cores attribute every issue slot to a cause (see
//! `fo4depth-pipeline`'s `counters` module); the structures themselves only
//! need to answer two questions cheaply — *how full are you* and *who is
//! the oldest instruction you are holding back* — and to stream occupancy
//! samples into a sink. That sink is the [`Observer`] trait. The hot path
//! pays a single `Option` check per cycle when observation is off; no
//! structure carries per-access observation branches.

use serde::{Deserialize, Serialize};

/// Which structure an occupancy sample describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Structure {
    /// The issue window (or the in-order core's issue queue).
    Window,
    /// The reorder buffer.
    Rob,
    /// The load/store queue (loads + stores combined).
    Lsq,
}

/// A sink for per-cycle structure observations.
pub trait Observer {
    /// Records that `structure` held `occupancy` entries this cycle.
    fn occupancy(&mut self, structure: Structure, occupancy: usize);
}

/// A dense occupancy histogram: bucket *k* counts the cycles the structure
/// held exactly *k* entries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyHist {
    buckets: Vec<u64>,
}

impl OccupancyHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from raw buckets (index = occupancy, value =
    /// cycles), the inverse of [`OccupancyHist::buckets`]. Used by the
    /// persistent result cache to round-trip observed counters through
    /// their on-disk encoding bit-exactly — including any trailing zero
    /// buckets, which participate in equality.
    #[must_use]
    pub fn from_buckets(buckets: Vec<u64>) -> Self {
        Self { buckets }
    }

    /// Records one cycle at `occupancy` entries.
    pub fn record(&mut self, occupancy: usize) {
        self.record_n(occupancy, 1);
    }

    /// Records `n` cycles at `occupancy` entries, bit-identical to calling
    /// [`record`](Self::record) `n` times. Idle-cycle coalescing replays a
    /// whole skipped stretch (whose occupancies are constant by
    /// construction) with one call.
    pub fn record_n(&mut self, occupancy: usize, n: u64) {
        if self.buckets.len() <= occupancy {
            self.buckets.resize(occupancy + 1, 0);
        }
        self.buckets[occupancy] += n;
    }

    /// Cycles recorded in total.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean occupancy over all recorded cycles (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.samples();
        if n == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(occ, &count)| occ as u64 * count)
            .sum();
        weighted as f64 / n as f64
    }

    /// Highest occupancy ever recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> usize {
        self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// The raw buckets: index = occupancy, value = cycles.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Whether any cycle has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_means() {
        let mut h = OccupancyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        for occ in [0, 2, 2, 4] {
            h.record(occ);
        }
        assert_eq!(h.samples(), 4);
        assert_eq!(h.max(), 4);
        assert_eq!(h.buckets()[2], 2);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_grows_on_demand() {
        let mut h = OccupancyHist::new();
        h.record(63);
        assert_eq!(h.buckets().len(), 64);
        assert_eq!(h.samples(), 1);
        assert_eq!(h.max(), 63);
    }
}
