//! Register renaming: architectural → physical mapping with a free list.
//!
//! The paper sizes both physical register files at 512 entries (§3.1) so
//! that deep pipelines are not artificially register-starved; the default
//! here matches. Renaming is a *resource* model: the map tracks the current
//! producer of each architectural name so dispatch can wire consumers to
//! producers, and the free list throttles dispatch when physical registers
//! run out. Because the simulator is trace-driven (no wrong-path
//! execution), no checkpoint/rollback machinery is needed: a squashed fetch
//! group never reaches rename.

use fo4depth_isa::ArchReg;
use serde::{Deserialize, Serialize};

/// Reason renaming could not proceed this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RenameStall {
    /// The free list is empty.
    NoPhysicalRegisters,
}

impl std::fmt::Display for RenameStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenameStall::NoPhysicalRegisters => f.write_str("physical register file exhausted"),
        }
    }
}

impl std::error::Error for RenameStall {}

/// A physical register name.
pub type PhysReg = u32;

/// The rename map and free list for one register bank pair.
///
/// # Examples
///
/// ```
/// use fo4depth_isa::ArchReg;
/// use fo4depth_uarch::rename::RenameMap;
///
/// let mut map = RenameMap::new(512);
/// let r1 = ArchReg::int(1);
/// let p_old = map.current(r1);
/// let p_new = map.rename_dest(r1).unwrap();
/// assert_ne!(p_old, p_new);
/// assert_eq!(map.current(r1), p_new);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenameMap {
    /// Current physical register per architectural name (flat-indexed).
    map: Vec<PhysReg>,
    /// Free physical registers.
    free: Vec<PhysReg>,
    /// Total physical registers.
    total: u32,
}

impl RenameMap {
    /// Creates a map backed by `phys_regs` physical registers; the first 64
    /// are bound to the 64 architectural names, the rest start free.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs < 65` (there must be at least one free
    /// register, or dispatch could never proceed).
    #[must_use]
    pub fn new(phys_regs: u32) -> Self {
        assert!(
            phys_regs >= 65,
            "need more physical than architectural registers"
        );
        Self {
            map: (0..64).collect(),
            free: (64..phys_regs).rev().collect(),
            total: phys_regs,
        }
    }

    /// The physical register currently holding `reg`'s value.
    #[must_use]
    pub fn current(&self, reg: ArchReg) -> PhysReg {
        self.map[reg.flat_index()]
    }

    /// Allocates a new physical register for a write to `reg`, returning
    /// the new name. The *previous* mapping should be freed when the
    /// writing instruction commits (pass it to [`free`](Self::free)).
    ///
    /// # Errors
    ///
    /// Returns [`RenameStall::NoPhysicalRegisters`] when the free list is
    /// empty; the caller should stall dispatch this cycle.
    pub fn rename_dest(&mut self, reg: ArchReg) -> Result<PhysReg, RenameStall> {
        let new = self.free.pop().ok_or(RenameStall::NoPhysicalRegisters)?;
        self.map[reg.flat_index()] = new;
        Ok(new)
    }

    /// Returns a physical register to the free list.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if the register is out of range.
    pub fn free(&mut self, reg: PhysReg) {
        debug_assert!(reg < self.total, "freeing unknown register");
        self.free.push(reg);
    }

    /// Number of free physical registers.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total physical registers.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_changes_mapping_and_consumes_free_list() {
        let mut m = RenameMap::new(80);
        let before = m.free_count();
        let r = ArchReg::int(5);
        let old = m.current(r);
        let new = m.rename_dest(r).unwrap();
        assert_ne!(old, new);
        assert_eq!(m.free_count(), before - 1);
    }

    #[test]
    fn exhaustion_then_recovery() {
        let mut m = RenameMap::new(66); // two free registers
        let r = ArchReg::int(0);
        let p1 = m.rename_dest(r).unwrap();
        let _p2 = m.rename_dest(r).unwrap();
        assert_eq!(m.rename_dest(r), Err(RenameStall::NoPhysicalRegisters));
        m.free(p1);
        assert!(m.rename_dest(r).is_ok());
    }

    #[test]
    fn consumers_see_latest_producer() {
        let mut m = RenameMap::new(512);
        let r = ArchReg::fp(3);
        let p1 = m.rename_dest(r).unwrap();
        assert_eq!(m.current(r), p1);
        let p2 = m.rename_dest(r).unwrap();
        assert_eq!(m.current(r), p2);
    }

    #[test]
    fn banks_do_not_alias() {
        let m = RenameMap::new(512);
        assert_ne!(m.current(ArchReg::int(7)), m.current(ArchReg::fp(7)));
    }

    #[test]
    #[should_panic(expected = "more physical than architectural")]
    fn rejects_tiny_register_file() {
        let _ = RenameMap::new(64);
    }
}
