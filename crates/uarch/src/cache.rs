//! Set-associative caches and the two-level hierarchy.
//!
//! The hierarchy mirrors the paper's memory system: an L1 data cache, a
//! unified L2, and a flat memory behind it. Latencies are supplied in
//! cycles by the clock-scaling layer. For the CRAY-1S comparison (§4.2) the
//! hierarchy can run with caches disabled so that every reference pays the
//! flat memory latency.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero for an untouched cache.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Only tags are modelled (this is a timing study); writes allocate.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::cache::Cache;
/// let mut c = Cache::new(64 * 1024, 2, 64);
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1000)); // hit
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // per-set LRU stack of line addresses, MRU first
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `capacity` bytes, `ways` ways, `line` byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line or set count).
    #[must_use]
    pub fn new(capacity: u64, ways: usize, line: u64) -> Self {
        assert!(capacity > 0 && ways > 0 && line > 0);
        assert!(line.is_power_of_two(), "line size must be a power of two");
        let num_sets = capacity / (ways as u64 * line);
        assert!(num_sets > 0, "capacity too small for geometry");
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            ways,
            line_shift: line.trailing_zeros(),
            set_mask: num_sets - 1,
            stats: CacheStats::default(),
        }
    }

    /// Accesses `addr`; returns whether it hit, updating LRU state and
    /// allocating on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            self.stats.hits += 1;
            true
        } else {
            set.insert(0, line);
            if set.len() > self.ways {
                set.pop();
            }
            self.stats.misses += 1;
            false
        }
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Latency plumbing for the hierarchy, in cycles (already clock-scaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache capacity in bytes (0 disables caches entirely —
    /// the CRAY-1S mode of §4.2).
    pub l1_capacity: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity in bytes (0 disables the L2).
    pub l2_capacity: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Line size for both levels.
    pub line: u64,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Flat memory latency in cycles.
    pub memory_latency: u64,
    /// Maximum outstanding L1 misses (miss status holding registers);
    /// 0 = unbounded. The 21264 supported eight in-flight off-chip misses.
    pub mshr_limit: usize,
}

impl HierarchyConfig {
    /// The Alpha-21264-like base system: 64 KB/2-way L1, 2 MB L2.
    #[must_use]
    pub fn alpha_like(l1_latency: u64, l2_latency: u64, memory_latency: u64) -> Self {
        Self {
            l1_capacity: 64 * 1024,
            l1_ways: 2,
            l2_capacity: 2 * 1024 * 1024,
            l2_ways: 1,
            line: 64,
            l1_latency,
            l2_latency,
            memory_latency,
            mshr_limit: 8,
        }
    }

    /// The CRAY-1S-style system of §4.2: no caches, flat `memory_latency`.
    #[must_use]
    pub fn flat_memory(memory_latency: u64) -> Self {
        Self {
            l1_capacity: 0,
            l1_ways: 1,
            l2_capacity: 0,
            l2_ways: 1,
            line: 64,
            l1_latency: 0,
            l2_latency: 0,
            memory_latency,
            // The CRAY-1S issued loads from a scoreboarded register file;
            // memory banking sustained one access per cycle, so in-flight
            // parallelism is not the bottleneck we model here.
            mshr_limit: 0,
        }
    }
}

/// A two-level data-cache hierarchy returning access latency in cycles.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Option<Cache>,
    l2: Option<Cache>,
}

impl Hierarchy {
    /// Builds the hierarchy described by `config`.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        let l1 = (config.l1_capacity > 0)
            .then(|| Cache::new(config.l1_capacity, config.l1_ways, config.line));
        let l2 = (config.l2_capacity > 0)
            .then(|| Cache::new(config.l2_capacity, config.l2_ways, config.line));
        Self { config, l1, l2 }
    }

    /// The configured latencies and geometry.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs a data access and returns its latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        match (&mut self.l1, &mut self.l2) {
            (None, _) => self.config.memory_latency,
            (Some(l1), l2) => {
                if l1.access(addr) {
                    self.config.l1_latency
                } else if let Some(l2) = l2 {
                    if l2.access(addr) {
                        self.config.l1_latency + self.config.l2_latency
                    } else {
                        self.config.l1_latency + self.config.l2_latency + self.config.memory_latency
                    }
                } else {
                    self.config.l1_latency + self.config.memory_latency
                }
            }
        }
    }

    /// Replaces this hierarchy's cache contents and statistics with
    /// `other`'s, keeping this instance's configured latencies.
    ///
    /// Tag state is a pure function of the access sequence — it does not
    /// depend on the clock-scaled latencies — so lanes of a batched sweep
    /// that would each replay the same prewarm sequence can instead adopt
    /// one prewarmed template, bit-identical to having replayed it.
    ///
    /// # Panics
    ///
    /// Panics if the two hierarchies have different cache geometry (the
    /// adopted state would be meaningless).
    pub fn adopt_state(&mut self, other: &Self) {
        assert!(
            self.config.l1_capacity == other.config.l1_capacity
                && self.config.l1_ways == other.config.l1_ways
                && self.config.l2_capacity == other.config.l2_capacity
                && self.config.l2_ways == other.config.l2_ways
                && self.config.line == other.config.line,
            "adopt_state across different cache geometries"
        );
        self.l1.clone_from(&other.l1);
        self.l2.clone_from(&other.l2);
    }

    /// L1 statistics (zeroes when caches are disabled).
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.as_ref().map(Cache::stats).unwrap_or_default()
    }

    /// L2 statistics (zeroes when absent).
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.as_ref().map(Cache::stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        // 2-way, 2-set cache: lines 0,2,4 map to set 0 (line=64, sets=2).
        let mut c = Cache::new(256, 2, 64);
        assert!(!c.access(0)); // set0: [0]
        assert!(!c.access(128)); // set0: [2,0]
        assert!(c.access(0)); // set0: [0,2]
        assert!(!c.access(256)); // evicts 2 → [4,0]
        assert!(c.access(0));
        assert!(!c.access(128)); // 2 was evicted
    }

    #[test]
    fn within_line_accesses_hit() {
        let mut c = Cache::new(64 * 1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1001));
        assert!(c.access(0x103f));
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn stats_track_rates() {
        let mut c = Cache::new(1024, 1, 64);
        for i in 0..16 {
            c.access(i * 64);
        }
        for i in 0..16 {
            c.access(i * 64);
        }
        let s = c.stats();
        assert_eq!(s.misses, 16);
        assert_eq!(s.hits, 16);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_latency_tiers() {
        let mut h = Hierarchy::new(HierarchyConfig {
            l1_capacity: 1024,
            l1_ways: 1,
            l2_capacity: 64 * 1024,
            l2_ways: 1,
            line: 64,
            l1_latency: 3,
            l2_latency: 12,
            memory_latency: 100,
            mshr_limit: 0,
        });
        // Cold: L1 miss, L2 miss → full stack.
        assert_eq!(h.access(0x0), 115);
        // Hot in L1.
        assert_eq!(h.access(0x0), 3);
        // Thrash L1 (1 KB direct) but stay in L2.
        for i in 0..64 {
            h.access(i * 64);
        }
        assert_eq!(h.access(0x0), 15);
    }

    #[test]
    fn flat_memory_mode_charges_constant() {
        let mut h = Hierarchy::new(HierarchyConfig::flat_memory(12));
        assert_eq!(h.access(0x0), 12);
        assert_eq!(h.access(0x0), 12); // no caching whatsoever
        assert_eq!(h.l1_stats(), CacheStats::default());
    }

    #[test]
    fn alpha_like_geometry() {
        let h = Hierarchy::new(HierarchyConfig::alpha_like(3, 12, 80));
        assert_eq!(h.config().l1_capacity, 64 * 1024);
        assert_eq!(h.config().l2_capacity, 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(3 * 64, 1, 64);
    }
}
