//! Functional units: per-class execution latencies (already clock-scaled)
//! and the port budget the issue stage consumes.
//!
//! All units are fully pipelined ("new instructions can be assigned to them
//! every cycle" — Table 3 caption), so the pool only constrains *issues per
//! cycle*, never occupancy.

use fo4depth_isa::OpClass;
use serde::{Deserialize, Serialize};

use crate::window::{IssueBudget, IssuePort};

/// Coarse functional-unit class used for port assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer ALU / multiply / branch.
    Int,
    /// Floating-point pipeline.
    Fp,
    /// Memory port (loads and stores).
    Mem,
}

impl FuClass {
    /// The class an instruction of `op` needs.
    #[must_use]
    pub fn for_op(op: OpClass) -> FuClass {
        match op {
            OpClass::Load | OpClass::Store => FuClass::Mem,
            o if o.is_fp() => FuClass::Fp,
            _ => FuClass::Int,
        }
    }

    /// The issue port matching this class.
    #[must_use]
    pub fn port(self) -> IssuePort {
        match self {
            FuClass::Int => IssuePort::Int,
            FuClass::Fp => IssuePort::Fp,
            FuClass::Mem => IssuePort::Mem,
        }
    }
}

/// Issue-width configuration (units, all fully pipelined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuPoolConfig {
    /// Integer units (the paper's execution stage has four).
    pub int_units: u32,
    /// Floating-point units (two).
    pub fp_units: u32,
    /// Memory ports.
    pub mem_ports: u32,
    /// Overall issue width per cycle.
    pub issue_width: u32,
}

impl FuPoolConfig {
    /// The paper's configuration: 4 integer units, 2 FP units (§4),
    /// 2 memory ports, 6-wide peak issue (4-wide integer issue + 2-wide FP
    /// issue, §4.3).
    #[must_use]
    pub fn alpha_like() -> Self {
        Self {
            int_units: 4,
            fp_units: 2,
            mem_ports: 2,
            issue_width: 6,
        }
    }
}

/// Execution latencies per class, in cycles at the current clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecLatencies {
    /// Integer ALU (and branch resolution).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mult: u64,
    /// FP add.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mult: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP square root.
    pub fp_sqrt: u64,
    /// Address generation for loads/stores (cache time is separate).
    pub agen: u64,
}

impl ExecLatencies {
    /// Alpha 21264 latencies in its own cycles (the Table 3 last row).
    #[must_use]
    pub fn alpha21264() -> Self {
        Self {
            int_alu: 1,
            int_mult: 7,
            fp_add: 4,
            fp_mult: 4,
            fp_div: 12,
            fp_sqrt: 18,
            agen: 1,
        }
    }

    /// Latency of one op class.
    #[must_use]
    pub fn of(&self, op: OpClass) -> u64 {
        match op {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::Nop => self.int_alu,
            OpClass::IntMult => self.int_mult,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMult => self.fp_mult,
            OpClass::FpDiv => self.fp_div,
            OpClass::FpSqrt => self.fp_sqrt,
            OpClass::Load | OpClass::Store => self.agen,
        }
    }
}

/// A per-cycle issue-slot pool.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::fu::{FuPool, FuPoolConfig};
/// let pool = FuPool::new(FuPoolConfig::alpha_like());
/// let budget = pool.budget();
/// assert_eq!(budget.int, 4);
/// assert_eq!(budget.fp, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuPool {
    config: FuPoolConfig,
}

impl FuPool {
    /// Creates a pool.
    #[must_use]
    pub fn new(config: FuPoolConfig) -> Self {
        Self { config }
    }

    /// A fresh issue budget for one cycle.
    #[must_use]
    pub fn budget(&self) -> IssueBudget {
        IssueBudget {
            int: self.config.int_units,
            fp: self.config.fp_units,
            mem: self.config.mem_ports,
            total: self.config.issue_width,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> FuPoolConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_routing() {
        assert_eq!(FuClass::for_op(OpClass::IntAlu), FuClass::Int);
        assert_eq!(FuClass::for_op(OpClass::IntMult), FuClass::Int);
        assert_eq!(FuClass::for_op(OpClass::Branch), FuClass::Int);
        assert_eq!(FuClass::for_op(OpClass::FpDiv), FuClass::Fp);
        assert_eq!(FuClass::for_op(OpClass::Load), FuClass::Mem);
        assert_eq!(FuClass::for_op(OpClass::Store), FuClass::Mem);
    }

    #[test]
    fn alpha_latencies_match_isa_anchors() {
        let l = ExecLatencies::alpha21264();
        for op in OpClass::all() {
            if !op.is_memory() && !op.is_control() && op != OpClass::Nop {
                assert_eq!(l.of(op), u64::from(op.alpha_cycles()), "{op:?}");
            }
        }
    }

    #[test]
    fn budget_matches_config() {
        let b = FuPool::new(FuPoolConfig::alpha_like()).budget();
        assert_eq!((b.int, b.fp, b.mem, b.total), (4, 2, 2, 6));
    }
}
