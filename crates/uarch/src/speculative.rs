//! Speculative (grandparent) wakeup — the alternative pipelined-scheduler
//! design of Stark, Brown & Patt that the paper compares against in §6.
//!
//! Their scheme pipelines wakeup + select over two cycles but keeps
//! dependent instructions issuing back-to-back by waking an instruction
//! *speculatively* when its grandparents issue: if the grandparents' tags
//! are broadcast this cycle, the parents are probably issuing right now,
//! so the instruction can be selected next cycle — exactly when a
//! single-cycle scheduler would have selected it.
//!
//! The cost is mis-speculation. Two kinds of victims exist:
//!
//! * **collision victims** — instructions that asserted availability but
//!   lost the select arbitration; their speculatively woken dependents must
//!   be pulled back and rescheduled;
//! * **pileup victims** — dependents woken behind a parent that turned out
//!   not to issue.
//!
//! This model realizes the timing consequences deterministically: selection
//! sees true readiness (successful speculation reproduces the single-cycle
//! schedule), and any instruction that was *ready but unselected* —
//! an arbitration loss that in the real design has already triggered its
//! dependents' speculative wakeup — pays a fixed reschedule penalty before
//! it can be considered again. Stark et al. measure the net IPC loss at a
//! few percent of an ideal one-cycle scheduler; this model lands in the
//! same band (see `study::ablation` and the §6 comparison bench).

use serde::{Deserialize, Serialize};

use crate::window::{IssueBudget, WindowEntry, WindowModel};

/// Default reschedule penalty for victims, in cycles (the two-cycle
/// scheduler must drain and replay them).
pub const DEFAULT_RESCHEDULE_PENALTY: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct SpecEntry {
    entry: WindowEntry,
    /// Earliest cycle the scheduler may consider the entry again after a
    /// mis-speculation (0 = never victimized).
    reschedule_at: u64,
    /// Whether the entry has already been victimized once (victims are not
    /// re-victimized; the replay path is non-speculative).
    victimized: bool,
}

/// A two-cycle pipelined scheduler with grandparent (speculative) wakeup.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::speculative::SpeculativeWindow;
/// use fo4depth_uarch::window::{IssueBudget, IssuePort, WindowEntry, WindowModel};
///
/// let mut w = SpeculativeWindow::new(32, 2);
/// w.insert(WindowEntry { seq: 0, port: IssuePort::Int, ready_at: 0 });
/// let mut b = IssueBudget::alpha_like();
/// assert_eq!(w.select(0, &mut b).len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeculativeWindow {
    entries: Vec<SpecEntry>,
    capacity: usize,
    reschedule_penalty: u64,
    collisions: u64,
}

impl SpeculativeWindow {
    /// Creates a window of `capacity` entries with the given reschedule
    /// penalty for arbitration victims.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, reschedule_penalty: u64) -> Self {
        assert!(capacity > 0, "window needs capacity");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            reschedule_penalty,
            collisions: 0,
        }
    }

    /// Number of collision victims observed (ready instructions that lost
    /// arbitration and paid the reschedule penalty).
    #[must_use]
    pub fn collision_count(&self) -> u64 {
        self.collisions
    }
}

impl WindowModel for SpeculativeWindow {
    fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn insert(&mut self, entry: WindowEntry) {
        assert!(self.has_space(), "window full");
        debug_assert!(
            self.entries.last().is_none_or(|e| e.entry.seq < entry.seq),
            "window insertion out of program order"
        );
        self.entries.push(SpecEntry {
            entry,
            reschedule_at: 0,
            victimized: false,
        });
    }

    fn set_ready(&mut self, seq: u64, ready_at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.entry.seq == seq) {
            e.entry.ready_at = e.entry.ready_at.min(ready_at);
        }
    }

    fn select_into(&mut self, now: u64, budget: &mut IssueBudget, out: &mut Vec<WindowEntry>) {
        out.extend(self.select(now, budget));
    }

    fn select(&mut self, now: u64, budget: &mut IssueBudget) -> Vec<WindowEntry> {
        // Pass 1: arbitration among entries that assert availability.
        let mut out = Vec::new();
        let mut removed = Vec::new();
        let mut losers = Vec::new();
        for (pos, e) in self.entries.iter().enumerate() {
            let considered = e.entry.ready_at <= now && e.reschedule_at <= now;
            if !considered {
                continue;
            }
            if budget.total > 0 {
                let mut probe = *budget;
                if probe.take(e.entry.port) {
                    *budget = probe;
                    out.push(e.entry);
                    removed.push(pos);
                    continue;
                }
            }
            // Ready, asserted availability, lost arbitration: its
            // speculatively woken dependents must replay — charged here as
            // a reschedule delay on the victim itself (first time only;
            // the replay path is non-speculative).
            losers.push(pos);
        }
        for &pos in &losers {
            let e = &mut self.entries[pos];
            if !e.victimized {
                e.victimized = true;
                e.reschedule_at = now + self.reschedule_penalty;
                self.collisions += 1;
            }
        }
        for pos in removed.into_iter().rev() {
            self.entries.remove(pos);
        }
        out
    }

    fn visible_ready(&self, now: u64) -> usize {
        self.entries
            .iter()
            .filter(|e| e.entry.ready_at <= now && e.reschedule_at <= now)
            .count()
    }

    fn oldest_waiting(&self, now: u64) -> Option<WindowEntry> {
        // A reschedule-delayed victim reports its raw `ready_at`: the core
        // sees a value-ready-but-invisible entry and charges the wait to
        // the scheduler loop, which is what a replay delay is.
        self.entries
            .iter()
            .find(|e| e.entry.ready_at > now || e.reschedule_at > now)
            .map(|e| e.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::IssuePort;

    fn entry(seq: u64, ready: u64) -> WindowEntry {
        WindowEntry {
            seq,
            port: IssuePort::Int,
            ready_at: ready,
        }
    }

    fn drain(w: &mut SpeculativeWindow, now: u64) -> Vec<u64> {
        let mut b = IssueBudget::alpha_like();
        w.select(now, &mut b).iter().map(|e| e.seq).collect()
    }

    #[test]
    fn uncontended_behaves_like_single_cycle_scheduler() {
        let mut w = SpeculativeWindow::new(8, 2);
        w.insert(entry(0, 3));
        assert!(drain(&mut w, 2).is_empty());
        assert_eq!(drain(&mut w, 3), vec![0]);
        assert_eq!(w.collision_count(), 0);
    }

    #[test]
    fn arbitration_losers_pay_reschedule_penalty() {
        // Six ready integer instructions against a 4-wide int budget: two
        // lose arbitration and are delayed by the penalty.
        let mut w = SpeculativeWindow::new(8, 2);
        for s in 0..6 {
            w.insert(entry(s, 0));
        }
        assert_eq!(drain(&mut w, 0), vec![0, 1, 2, 3]);
        assert_eq!(w.collision_count(), 2);
        // Victims are not selectable before now + penalty.
        assert!(drain(&mut w, 1).is_empty());
        assert_eq!(drain(&mut w, 2), vec![4, 5]);
    }

    #[test]
    fn victims_are_only_penalized_once() {
        let mut w = SpeculativeWindow::new(16, 3);
        for s in 0..8 {
            w.insert(entry(s, 0));
        }
        let _ = drain(&mut w, 0); // 4 issue, 4 victims
        assert_eq!(w.collision_count(), 4);
        // At now+3 all four victims replay; still only 4 collisions even
        // though port pressure recurs.
        assert_eq!(drain(&mut w, 3), vec![4, 5, 6, 7]);
        assert_eq!(w.collision_count(), 4);
    }

    #[test]
    fn set_ready_wakes_deferred_entries() {
        let mut w = SpeculativeWindow::new(4, 2);
        w.insert(entry(0, u64::MAX));
        assert!(drain(&mut w, 10).is_empty());
        w.set_ready(0, 5);
        assert_eq!(drain(&mut w, 10), vec![0]);
    }
}
