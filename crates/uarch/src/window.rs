//! The conventional instruction issue window.
//!
//! Entries wait with their source-ready times; each cycle the select logic
//! picks the oldest ready instructions that fit the issue budget. A
//! multi-cycle window (wakeup latency > 1, as deep clocks force — Table 3)
//! delays the visibility of readiness by `wakeup − 1` cycles: that is the
//! paper's *issue–wakeup critical loop*.

use serde::{Deserialize, Serialize};

/// Which issue port an instruction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IssuePort {
    /// Integer ALU / branch port.
    Int,
    /// Floating-point port.
    Fp,
    /// Memory (load/store) port.
    Mem,
}

/// Per-cycle issue capacity, consumed as instructions are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueBudget {
    /// Remaining integer issues this cycle.
    pub int: u32,
    /// Remaining FP issues this cycle.
    pub fp: u32,
    /// Remaining memory issues this cycle.
    pub mem: u32,
    /// Remaining total issues this cycle (the machine's issue width).
    pub total: u32,
}

impl IssueBudget {
    /// The Alpha-21264-like budget: 4-wide integer, 2-wide FP, 2 memory
    /// ports, 6 total.
    #[must_use]
    pub fn alpha_like() -> Self {
        Self {
            int: 4,
            fp: 2,
            mem: 2,
            total: 6,
        }
    }

    /// Attempts to consume one slot for `port`; returns whether it fit.
    pub fn take(&mut self, port: IssuePort) -> bool {
        if self.total == 0 {
            return false;
        }
        let slot = match port {
            IssuePort::Int => &mut self.int,
            IssuePort::Fp => &mut self.fp,
            IssuePort::Mem => &mut self.mem,
        };
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
        self.total -= 1;
        true
    }
}

/// One waiting instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEntry {
    /// Dynamic sequence number (age).
    pub seq: u64,
    /// Issue port required.
    pub port: IssuePort,
    /// Cycle at which the last source value is broadcast to the window's
    /// first stage (before any wakeup-pipelining delay).
    pub ready_at: u64,
}

/// Behaviour common to issue-window organizations.
///
/// The conventional window and the paper's segmented window implement this;
/// the out-of-order core is generic over it.
pub trait WindowModel: std::fmt::Debug {
    /// Whether another instruction can be inserted.
    fn has_space(&self) -> bool;

    /// Current occupancy.
    fn len(&self) -> usize;

    /// Whether the window holds no instructions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity.
    fn capacity(&self) -> usize;

    /// Inserts a dispatched instruction (entries arrive in program order).
    ///
    /// # Panics
    ///
    /// Implementations panic when full; guard with
    /// [`has_space`](Self::has_space).
    fn insert(&mut self, entry: WindowEntry);

    /// Selects and removes up to the budgeted number of ready instructions
    /// at cycle `now`, oldest first.
    fn select(&mut self, now: u64, budget: &mut IssueBudget) -> Vec<WindowEntry> {
        let mut out = Vec::new();
        self.select_into(now, budget, &mut out);
        out
    }

    /// [`select`](Self::select) into a caller-owned buffer (appended, not
    /// cleared). Cores call select once per cycle on the simulated hot
    /// path; reusing one buffer keeps that path allocation-free.
    fn select_into(&mut self, now: u64, budget: &mut IssueBudget, out: &mut Vec<WindowEntry>);

    /// [`select_into`](Self::select_into) for the tuned (batched) engine:
    /// identical selection decisions and surviving-entry order, but an
    /// organization may override it with a cheaper removal strategy. The
    /// default delegates to the reference implementation, so exotic models
    /// are correct for free; the scalar reference core never calls this.
    fn select_into_tuned(
        &mut self,
        now: u64,
        budget: &mut IssueBudget,
        out: &mut Vec<WindowEntry>,
    ) {
        self.select_into(now, budget, out);
    }

    /// Lowers the ready time of entry `seq` to `ready_at` (used by cores
    /// that insert entries with `u64::MAX` while producers are unissued and
    /// wake them when the last producer schedules). No-op if `seq` is not
    /// present (it may have been inserted already-ready).
    fn set_ready(&mut self, seq: u64, ready_at: u64);

    /// Observation: entries whose readiness is *visible to select* at
    /// `now` — they could issue this cycle if a port were free. Called
    /// after [`select`](Self::select), a nonzero count means ready work
    /// lost the issue-bandwidth arbitration (a structural stall). Never
    /// called on the simulated hot path when observation is off.
    fn visible_ready(&self, now: u64) -> usize;

    /// Observation: the oldest entry whose readiness is *not* visible to
    /// select at `now`. Its `ready_at` lets the core distinguish a true
    /// dependency wait (`ready_at > now`) from in-window staging delay
    /// (broadcast arrived but the wakeup pipeline has not surfaced it).
    fn oldest_waiting(&self, now: u64) -> Option<WindowEntry>;

    /// The earliest cycle at which *any* entry becomes visible to select,
    /// assuming no further wakeups arrive (`u64::MAX` when the window is
    /// empty or every entry waits on an unscheduled producer). Returns
    /// `None` when the organization cannot answer cheaply — callers must
    /// then treat every cycle as potentially active. Idle-cycle coalescing
    /// uses this as one bound on how far the clock may safely jump; the
    /// default keeps exotic window models conservative (and correct) for
    /// free.
    fn next_visible_at(&self) -> Option<u64> {
        None
    }
}

/// The boxed trait object the scalar reference core stores: dynamic
/// dispatch keeps that core's window pluggable at runtime (conventional,
/// segmented, speculative) at the cost of a virtual call per stage probe.
/// The batched engine instead monomorphizes the core over a concrete
/// window type; this delegating impl lets both share one generic core.
impl WindowModel for Box<dyn WindowModel + Send> {
    fn has_space(&self) -> bool {
        (**self).has_space()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn insert(&mut self, entry: WindowEntry) {
        (**self).insert(entry);
    }

    fn select_into(&mut self, now: u64, budget: &mut IssueBudget, out: &mut Vec<WindowEntry>) {
        (**self).select_into(now, budget, out);
    }

    fn select_into_tuned(
        &mut self,
        now: u64,
        budget: &mut IssueBudget,
        out: &mut Vec<WindowEntry>,
    ) {
        (**self).select_into_tuned(now, budget, out);
    }

    fn set_ready(&mut self, seq: u64, ready_at: u64) {
        (**self).set_ready(seq, ready_at);
    }

    fn visible_ready(&self, now: u64) -> usize {
        (**self).visible_ready(now)
    }

    fn oldest_waiting(&self, now: u64) -> Option<WindowEntry> {
        (**self).oldest_waiting(now)
    }

    fn next_visible_at(&self) -> Option<u64> {
        (**self).next_visible_at()
    }
}

/// A conventional (monolithic) issue window.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::window::{ConventionalWindow, IssueBudget, IssuePort, WindowEntry, WindowModel};
///
/// let mut w = ConventionalWindow::new(32, 1);
/// w.insert(WindowEntry { seq: 0, port: IssuePort::Int, ready_at: 0 });
/// let mut budget = IssueBudget::alpha_like();
/// assert_eq!(w.select(0, &mut budget).len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConventionalWindow {
    entries: Vec<WindowEntry>,
    capacity: usize,
    wakeup_latency: u64,
}

impl ConventionalWindow {
    /// Creates a window of `capacity` entries with the given wakeup loop
    /// length in cycles (1 = dependent instructions can go back-to-back).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `wakeup_latency` is zero.
    #[must_use]
    pub fn new(capacity: usize, wakeup_latency: u64) -> Self {
        assert!(capacity > 0 && wakeup_latency > 0);
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            wakeup_latency,
        }
    }

    /// The wakeup loop length in cycles.
    #[must_use]
    pub fn wakeup_latency(&self) -> u64 {
        self.wakeup_latency
    }
}

impl WindowModel for ConventionalWindow {
    fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn insert(&mut self, entry: WindowEntry) {
        assert!(self.has_space(), "window full");
        debug_assert!(
            self.entries.last().is_none_or(|e| e.seq < entry.seq),
            "window insertion out of program order"
        );
        self.entries.push(entry);
    }

    fn set_ready(&mut self, seq: u64, ready_at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.ready_at = e.ready_at.min(ready_at);
        }
    }

    fn select_into(&mut self, now: u64, budget: &mut IssueBudget, out: &mut Vec<WindowEntry>) {
        let wake = self.wakeup_latency - 1;
        let mut i = 0;
        while i < self.entries.len() {
            if budget.total == 0 {
                break;
            }
            let e = self.entries[i];
            if e.ready_at.saturating_add(wake) <= now && budget.take(e.port) {
                out.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Single forward pass compacting survivors in place: the same
    /// entries are selected in the same order as the reference's
    /// scan-and-`remove` loop (the budget is consumed in identical
    /// order), but each select costs one O(len) sweep instead of an
    /// O(len) shift per selected entry.
    fn select_into_tuned(
        &mut self,
        now: u64,
        budget: &mut IssueBudget,
        out: &mut Vec<WindowEntry>,
    ) {
        let wake = self.wakeup_latency - 1;
        let mut kept = 0;
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            if budget.total != 0 && e.ready_at.saturating_add(wake) <= now && budget.take(e.port) {
                out.push(e);
            } else {
                self.entries[kept] = e;
                kept += 1;
            }
        }
        self.entries.truncate(kept);
    }

    fn visible_ready(&self, now: u64) -> usize {
        let wake = self.wakeup_latency - 1;
        self.entries
            .iter()
            .filter(|e| e.ready_at.saturating_add(wake) <= now)
            .count()
    }

    fn oldest_waiting(&self, now: u64) -> Option<WindowEntry> {
        let wake = self.wakeup_latency - 1;
        self.entries
            .iter()
            .find(|e| e.ready_at.saturating_add(wake) > now)
            .copied()
    }

    fn next_visible_at(&self) -> Option<u64> {
        let wake = self.wakeup_latency - 1;
        Some(
            self.entries
                .iter()
                .map(|e| e.ready_at.saturating_add(wake))
                .min()
                .unwrap_or(u64::MAX),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, ready: u64) -> WindowEntry {
        WindowEntry {
            seq,
            port: IssuePort::Int,
            ready_at: ready,
        }
    }

    #[test]
    fn selects_oldest_ready_first() {
        let mut w = ConventionalWindow::new(8, 1);
        w.insert(entry(0, 5)); // not ready at 0
        w.insert(entry(1, 0));
        w.insert(entry(2, 0));
        let mut b = IssueBudget::alpha_like();
        let picked = w.select(0, &mut b);
        let seqs: Vec<u64> = picked.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn budget_limits_by_port_and_total() {
        let mut w = ConventionalWindow::new(16, 1);
        for s in 0..10 {
            w.insert(entry(s, 0));
        }
        let mut b = IssueBudget::alpha_like();
        let picked = w.select(0, &mut b);
        assert_eq!(picked.len(), 4, "int port allows only 4");

        let mut w = ConventionalWindow::new(16, 1);
        for s in 0..4 {
            w.insert(WindowEntry {
                seq: s,
                port: IssuePort::Fp,
                ready_at: 0,
            });
        }
        let mut b = IssueBudget::alpha_like();
        assert_eq!(w.select(0, &mut b).len(), 2, "fp port allows only 2");
    }

    #[test]
    fn wakeup_latency_delays_dependents() {
        // With a 3-cycle window, an instruction whose source arrives at
        // cycle 10 cannot issue before cycle 12.
        let mut w = ConventionalWindow::new(8, 3);
        w.insert(entry(0, 10));
        let mut b = IssueBudget::alpha_like();
        assert!(w.select(10, &mut b).is_empty());
        assert!(w.select(11, &mut b).is_empty());
        assert_eq!(w.select(12, &mut b).len(), 1);
    }

    #[test]
    fn set_ready_wakes_deferred_entries() {
        let mut w = ConventionalWindow::new(4, 1);
        w.insert(entry(0, u64::MAX));
        let mut b = IssueBudget::alpha_like();
        assert!(w.select(100, &mut b).is_empty());
        w.set_ready(0, 50);
        let mut b = IssueBudget::alpha_like();
        assert_eq!(w.select(100, &mut b).len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut w = ConventionalWindow::new(2, 1);
        w.insert(entry(0, 0));
        w.insert(entry(1, 0));
        assert!(!w.has_space());
    }

    #[test]
    #[should_panic(expected = "window full")]
    fn insert_into_full_window_panics() {
        let mut w = ConventionalWindow::new(1, 1);
        w.insert(entry(0, 0));
        w.insert(entry(1, 0));
    }
}
