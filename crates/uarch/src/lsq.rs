//! Load/store queue with store-to-load forwarding.
//!
//! A timing-study LSQ: because the trace is oracle (every effective address
//! is known at dispatch), memory disambiguation never has to speculate.
//! What remains — and what matters for the pipeline-depth study — is the
//! *capacity* pressure of in-flight memory operations and the latency path
//! of loads that hit an older, not-yet-committed store (forwarding instead
//! of a cache access).

use serde::{Deserialize, Serialize};

/// Error returned when a queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("load/store queue full")
    }
}

impl std::error::Error for QueueFull {}

/// Result of checking a load against older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadSource {
    /// No older in-flight store overlaps: go to the cache hierarchy.
    Cache,
    /// Forward from the youngest older store to the same word.
    Forward {
        /// Sequence number of the forwarding store.
        store_seq: u64,
        /// Cycle the store's data is available (`u64::MAX` while the store
        /// has not executed yet).
        data_ready: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct StoreRecord {
    seq: u64,
    word_addr: u64,
    data_ready: u64,
}

/// The load/store queue.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::lsq::{LoadSource, LoadStoreQueue};
///
/// let mut lsq = LoadStoreQueue::new(32, 32);
/// lsq.insert_store(0, 0x1000, 7).unwrap();
/// lsq.insert_load(1, 0x1000).unwrap();
/// assert_eq!(
///     lsq.load_source(1, 0x1000),
///     LoadSource::Forward { store_seq: 0, data_ready: 7 }
/// );
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadStoreQueue {
    stores: Vec<StoreRecord>,
    loads: Vec<u64>, // sequence numbers of in-flight loads
    load_capacity: usize,
    store_capacity: usize,
    forwards: u64,
    /// First live index of `stores` under the `*_fast` method family; the
    /// reference family compacts eagerly and keeps this at zero. A queue
    /// instance only ever sees one family, so the two representations
    /// never mix.
    store_head: usize,
    /// First live index of `loads` under the `*_fast` family.
    load_head: usize,
}

impl LoadStoreQueue {
    /// Creates a queue with separate load and store capacities (the 21264
    /// has 32 + 32).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(load_capacity: usize, store_capacity: usize) -> Self {
        assert!(load_capacity > 0 && store_capacity > 0);
        Self {
            stores: Vec::with_capacity(store_capacity),
            loads: Vec::with_capacity(load_capacity),
            load_capacity,
            store_capacity,
            forwards: 0,
            store_head: 0,
            load_head: 0,
        }
    }

    /// Whether a load can be accepted.
    #[must_use]
    pub fn has_load_space(&self) -> bool {
        self.loads.len() - self.load_head < self.load_capacity
    }

    /// Whether a store can be accepted.
    #[must_use]
    pub fn has_store_space(&self) -> bool {
        self.stores.len() - self.store_head < self.store_capacity
    }

    /// Records an in-flight store with the cycle its data will be ready.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the store queue is full.
    pub fn insert_store(&mut self, seq: u64, addr: u64, data_ready: u64) -> Result<(), QueueFull> {
        if !self.has_store_space() {
            return Err(QueueFull);
        }
        self.stores.push(StoreRecord {
            seq,
            word_addr: addr >> 3,
            data_ready,
        });
        Ok(())
    }

    /// Records an in-flight load.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the load queue is full.
    pub fn insert_load(&mut self, seq: u64, _addr: u64) -> Result<(), QueueFull> {
        if !self.has_load_space() {
            return Err(QueueFull);
        }
        self.loads.push(seq);
        Ok(())
    }

    /// Where the load numbered `seq` at `addr` gets its data: the youngest
    /// older store to the same 8-byte word, or the cache.
    #[must_use]
    pub fn load_source(&mut self, seq: u64, addr: u64) -> LoadSource {
        let word = addr >> 3;
        let hit = self
            .stores
            .iter()
            .filter(|s| s.seq < seq && s.word_addr == word)
            .max_by_key(|s| s.seq);
        match hit {
            Some(s) => {
                self.forwards += 1;
                LoadSource::Forward {
                    store_seq: s.seq,
                    data_ready: s.data_ready,
                }
            }
            None => LoadSource::Cache,
        }
    }

    /// Data-ready cycle of the in-flight store numbered `seq`, or `None`
    /// if it already retired (its data is then architecturally visible).
    #[must_use]
    pub fn store_data_ready(&self, seq: u64) -> Option<u64> {
        self.stores
            .iter()
            .find(|s| s.seq == seq)
            .map(|s| s.data_ready)
    }

    /// Records that the store numbered `seq` has executed and its data is
    /// available from `data_ready` (stores are inserted at dispatch with
    /// `u64::MAX`).
    pub fn store_executed(&mut self, seq: u64, data_ready: u64) {
        if let Some(s) = self.stores.iter_mut().find(|s| s.seq == seq) {
            s.data_ready = s.data_ready.min(data_ready);
        }
    }

    /// Retires every queue entry older than or equal to `seq` (called as
    /// instructions commit).
    pub fn retire_through(&mut self, seq: u64) {
        self.stores.retain(|s| s.seq > seq);
        self.loads.retain(|&l| l > seq);
    }

    // ---- tuned method family -------------------------------------------
    //
    // Same key/value semantics as the methods above, exploited for the
    // batched engine: entries arrive in ascending sequence order (dispatch
    // order), so retirement is a head-index advance instead of a `retain`
    // over the whole queue, point lookups are binary searches, and the
    // forwarding scan walks backwards with an early exit (the first match
    // from the rear *is* the youngest older store). The scalar reference
    // keeps the straight-line seed implementations; the differential
    // harness proves the two families byte-identical through whole sweeps.

    /// [`LoadStoreQueue::load_source`] with a rear-to-front early-exit scan.
    #[must_use]
    pub fn load_source_fast(&mut self, seq: u64, addr: u64) -> LoadSource {
        let word = addr >> 3;
        let hit = self.stores[self.store_head..]
            .iter()
            .rev()
            .find(|s| s.seq < seq && s.word_addr == word);
        match hit {
            Some(s) => {
                self.forwards += 1;
                LoadSource::Forward {
                    store_seq: s.seq,
                    data_ready: s.data_ready,
                }
            }
            None => LoadSource::Cache,
        }
    }

    /// Index of the live store numbered `seq`, by binary search (live
    /// stores are sorted by sequence number).
    fn store_index(&self, seq: u64) -> Option<usize> {
        let live = &self.stores[self.store_head..];
        let i = live.partition_point(|s| s.seq < seq);
        (i < live.len() && live[i].seq == seq).then_some(self.store_head + i)
    }

    /// [`LoadStoreQueue::store_data_ready`] by binary search.
    #[must_use]
    pub fn store_data_ready_fast(&self, seq: u64) -> Option<u64> {
        self.store_index(seq).map(|i| self.stores[i].data_ready)
    }

    /// [`LoadStoreQueue::store_executed`] by binary search.
    pub fn store_executed_fast(&mut self, seq: u64, data_ready: u64) {
        if let Some(i) = self.store_index(seq) {
            let s = &mut self.stores[i];
            s.data_ready = s.data_ready.min(data_ready);
        }
    }

    /// [`LoadStoreQueue::retire_through`] as an amortized-O(1) head
    /// advance, compacting only when a queue fully drains or the dead
    /// prefix outgrows the live capacity.
    pub fn retire_through_fast(&mut self, seq: u64) {
        while self
            .stores
            .get(self.store_head)
            .is_some_and(|s| s.seq <= seq)
        {
            self.store_head += 1;
        }
        if self.store_head >= self.stores.len() {
            self.stores.clear();
            self.store_head = 0;
        } else if self.store_head > self.store_capacity * 4 {
            self.stores.drain(..self.store_head);
            self.store_head = 0;
        }
        while self.loads.get(self.load_head).is_some_and(|&l| l <= seq) {
            self.load_head += 1;
        }
        if self.load_head >= self.loads.len() {
            self.loads.clear();
            self.load_head = 0;
        } else if self.load_head > self.load_capacity * 4 {
            self.loads.drain(..self.load_head);
            self.load_head = 0;
        }
    }

    /// Number of store-to-load forwards observed.
    #[must_use]
    pub fn forward_count(&self) -> u64 {
        self.forwards
    }

    /// In-flight (load, store) occupancy.
    #[must_use]
    pub fn occupancy(&self) -> (usize, usize) {
        (
            self.loads.len() - self.load_head,
            self.stores.len() - self.store_head,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_from_youngest_older_store() {
        let mut lsq = LoadStoreQueue::new(8, 8);
        lsq.insert_store(0, 0x1000, 5).unwrap();
        lsq.insert_store(2, 0x1000, 9).unwrap();
        lsq.insert_store(4, 0x2000, 3).unwrap();
        assert_eq!(
            lsq.load_source(3, 0x1000),
            LoadSource::Forward {
                store_seq: 2,
                data_ready: 9
            }
        );
        assert_eq!(
            lsq.load_source(1, 0x1000),
            LoadSource::Forward {
                store_seq: 0,
                data_ready: 5
            }
        );
        assert_eq!(lsq.load_source(5, 0x3000), LoadSource::Cache);
        assert_eq!(lsq.forward_count(), 2);
    }

    #[test]
    fn younger_stores_do_not_forward() {
        let mut lsq = LoadStoreQueue::new(8, 8);
        lsq.insert_store(10, 0x1000, 5).unwrap();
        assert_eq!(lsq.load_source(3, 0x1000), LoadSource::Cache);
    }

    #[test]
    fn word_granularity() {
        let mut lsq = LoadStoreQueue::new(8, 8);
        lsq.insert_store(0, 0x1000, 5).unwrap();
        // Same 8-byte word.
        assert!(matches!(
            lsq.load_source(1, 0x1004),
            LoadSource::Forward { .. }
        ));
        // Next word.
        assert_eq!(lsq.load_source(2, 0x1008), LoadSource::Cache);
    }

    #[test]
    fn store_executed_updates_data_ready() {
        let mut lsq = LoadStoreQueue::new(8, 8);
        lsq.insert_store(0, 0x1000, u64::MAX).unwrap();
        assert_eq!(
            lsq.load_source(1, 0x1000),
            LoadSource::Forward {
                store_seq: 0,
                data_ready: u64::MAX
            }
        );
        lsq.store_executed(0, 42);
        assert_eq!(
            lsq.load_source(1, 0x1000),
            LoadSource::Forward {
                store_seq: 0,
                data_ready: 42
            }
        );
    }

    #[test]
    fn capacity_and_retirement() {
        let mut lsq = LoadStoreQueue::new(2, 2);
        lsq.insert_load(0, 0).unwrap();
        lsq.insert_load(1, 8).unwrap();
        assert!(lsq.insert_load(2, 16).is_err());
        lsq.insert_store(3, 0, 1).unwrap();
        lsq.insert_store(4, 8, 1).unwrap();
        assert!(lsq.insert_store(5, 16, 1).is_err());
        lsq.retire_through(3);
        assert_eq!(lsq.occupancy(), (0, 1));
        assert!(lsq.insert_load(6, 0).is_ok());
    }
}
