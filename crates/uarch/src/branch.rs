//! Branch direction predictors and a branch target buffer.
//!
//! The flagship model is [`Tournament`], the 21264's hybrid: a local
//! two-level predictor (1 K × 10-bit histories indexing 1 K 3-bit
//! counters), a global predictor (4 K 2-bit counters indexed by 12 bits of
//! global history), and a chooser (4 K 2-bit counters) that learns which
//! side to trust per history. All tables are size-parameterized so the
//! capacity study (§4.5) can scale them.

use serde::{Deserialize, Serialize};

/// A branch direction predictor.
///
/// The simulator calls [`predict`](Self::predict) at fetch and
/// [`update`](Self::update) at resolve with the oracle outcome.
pub trait BranchPredictor: std::fmt::Debug {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the actual outcome.
    fn update(&mut self, pc: u64, taken: bool);
}

#[inline]
fn counter_update(c: &mut u8, taken: bool, max: u8) {
    if taken {
        *c = (*c + 1).min(max);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// Classic bimodal predictor: a table of 2-bit saturating counters indexed
/// by PC.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::branch::{Bimodal, BranchPredictor};
/// let mut p = Bimodal::new(1024);
/// for _ in 0..4 {
///     p.update(0x40, true);
/// }
/// assert!(p.predict(0x40));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bimodal {
    table: Vec<u8>,
}

impl Bimodal {
    /// Creates a predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            table: vec![1; entries], // weakly not-taken
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        counter_update(&mut self.table[i], taken, 3);
    }
}

/// Gshare: global history XOR PC indexes a table of 2-bit counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` counters and
    /// `log2(entries)` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            table: vec![1; entries],
            history: 0,
            history_bits: entries.trailing_zeros(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & (self.table.len() - 1)
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        counter_update(&mut self.table[i], taken, 3);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }
}

/// Local two-level predictor: per-branch history registers indexing a
/// shared pattern table of 3-bit counters (the local side of the 21264).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalTwoLevel {
    histories: Vec<u16>,
    pattern: Vec<u8>,
    history_bits: u32,
}

impl LocalTwoLevel {
    /// Creates a local predictor with `sites` history registers of
    /// `history_bits` bits and a `2^history_bits` pattern table.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is not a power of two or `history_bits` exceeds 16.
    #[must_use]
    pub fn new(sites: usize, history_bits: u32) -> Self {
        assert!(sites.is_power_of_two(), "site count must be a power of two");
        assert!(history_bits <= 16, "history too long");
        Self {
            histories: vec![0; sites],
            pattern: vec![3; 1 << history_bits], // weakly not-taken of 3-bit
            history_bits,
        }
    }

    fn site(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.histories.len() - 1)
    }

    fn pattern_index(&self, pc: u64) -> usize {
        let h = self.histories[self.site(pc)];
        (h as usize) & ((1 << self.history_bits) - 1)
    }
}

impl BranchPredictor for LocalTwoLevel {
    fn predict(&mut self, pc: u64) -> bool {
        self.pattern[self.pattern_index(pc)] >= 4
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pi = self.pattern_index(pc);
        counter_update(&mut self.pattern[pi], taken, 7);
        let s = self.site(pc);
        self.histories[s] =
            ((self.histories[s] << 1) | u16::from(taken)) & ((1 << self.history_bits) - 1) as u16;
    }
}

/// The Alpha 21264 tournament predictor: local + global with a
/// history-indexed chooser.
///
/// # Examples
///
/// ```
/// use fo4depth_uarch::branch::{BranchPredictor, Tournament};
/// let mut p = Tournament::alpha21264();
/// // A strongly biased branch becomes predictable once the local history
/// // register and pattern table have saturated.
/// for _ in 0..32 { p.update(0x100, true); }
/// assert!(p.predict(0x100));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tournament {
    local: LocalTwoLevel,
    global: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    history_mask: u64,
}

impl Tournament {
    /// The 21264 configuration: 1 K × 10-bit local, 4 K global, 4 K chooser.
    #[must_use]
    pub fn alpha21264() -> Self {
        Self::new(1024, 10, 4096)
    }

    /// Creates a tournament predictor with the given table geometry.
    ///
    /// # Panics
    ///
    /// Panics if `global_entries` is not a power of two (other parameters
    /// are checked by [`LocalTwoLevel::new`]).
    #[must_use]
    pub fn new(local_sites: usize, local_history_bits: u32, global_entries: usize) -> Self {
        assert!(
            global_entries.is_power_of_two(),
            "global table must be a power of two"
        );
        Self {
            local: LocalTwoLevel::new(local_sites, local_history_bits),
            global: vec![1; global_entries],
            chooser: vec![2; global_entries],
            history: 0,
            history_mask: (global_entries - 1) as u64,
        }
    }

    fn gindex(&self) -> usize {
        (self.history & self.history_mask) as usize
    }

    fn cindex(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.chooser.len().wrapping_sub(1)
    }
}

impl BranchPredictor for Tournament {
    fn predict(&mut self, pc: u64) -> bool {
        let local_pred = self.local.predict(pc);
        let global_pred = self.global[self.gindex()] >= 2;
        // McFarling-style combining: the chooser is indexed by branch
        // address so each site learns which component to trust.
        let use_global = self.chooser[self.cindex(pc)] >= 2;
        if use_global {
            global_pred
        } else {
            local_pred
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let gi = self.gindex();
        let ci = self.cindex(pc);
        let local_pred = self.local.predict(pc);
        let global_pred = self.global[gi] >= 2;
        // Chooser trains toward whichever side was right (when they differ).
        if local_pred != global_pred {
            counter_update(&mut self.chooser[ci], global_pred == taken, 3);
        }
        counter_update(&mut self.global[gi], taken, 3);
        self.local.update(pc, taken);
        self.history = (self.history << 1) | u64::from(taken);
    }
}

/// Perceptron predictor (Jiménez & Lin, HPCA 2001) — contemporaneous with
/// the paper and the natural "what if the predictor were better?"
/// ablation for the pipeline-depth study: deeper pipelines pay more per
/// misprediction, so predictor quality shifts the optimal clock.
///
/// Each branch hashes to a row of small signed weights; the prediction is
/// the sign of the dot product between the weights and the global history
/// (±1 encoded). Training nudges weights when the prediction was wrong or
/// the magnitude was below the threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Perceptron {
    weights: Vec<Vec<i16>>,
    history: Vec<i8>,
    threshold: i32,
}

impl Perceptron {
    /// Creates a perceptron predictor with `rows` weight vectors over
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two or `history_bits` is zero.
    #[must_use]
    pub fn new(rows: usize, history_bits: usize) -> Self {
        assert!(rows.is_power_of_two(), "row count must be a power of two");
        assert!(history_bits > 0, "history must be non-empty");
        // Jiménez's threshold heuristic: ⌊1.93·h + 14⌋.
        let threshold = (1.93 * history_bits as f64 + 14.0) as i32;
        Self {
            weights: vec![vec![0; history_bits + 1]; rows],
            history: vec![1; history_bits],
            threshold,
        }
    }

    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.weights.len() - 1)
    }

    fn output(&self, pc: u64) -> i32 {
        let w = &self.weights[self.row(pc)];
        let mut y = i32::from(w[0]); // bias weight
        for (wi, hi) in w[1..].iter().zip(&self.history) {
            y += i32::from(*wi) * i32::from(*hi);
        }
        y
    }
}

impl BranchPredictor for Perceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.output(pc) >= 0
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let y = self.output(pc);
        let predicted = y >= 0;
        let t: i32 = if taken { 1 } else { -1 };
        if predicted != taken || y.abs() <= self.threshold {
            let row = self.row(pc);
            let w = &mut self.weights[row];
            w[0] = (i32::from(w[0]) + t).clamp(-127, 127) as i16;
            for (wi, hi) in w[1..].iter_mut().zip(&self.history) {
                let delta = t * i32::from(*hi);
                *wi = (i32::from(*wi) + delta).clamp(-127, 127) as i16;
            }
        }
        self.history.rotate_right(1);
        self.history[0] = if taken { 1 } else { -1 };
    }
}

/// A direct-mapped branch target buffer. Direction prediction says *taken*;
/// the BTB must still supply the target, and a miss redirects like a
/// misprediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<u64>,
    stats: BtbStats,
}

/// Cumulative BTB counters (always on — the counting is two adds on a path
/// that already does a tag compare).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbStats {
    /// Target lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching tag (target correctness is the
    /// caller's comparison; this is presence only).
    pub hits: u64,
}

impl BtbStats {
    /// Tag hit rate (0 when no lookups happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Counters accumulated since `earlier` (an interval delta).
    #[must_use]
    pub fn since(&self, earlier: &BtbStats) -> BtbStats {
        BtbStats {
            lookups: self.lookups - earlier.lookups,
            hits: self.hits - earlier.hits,
        }
    }
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Self {
            tags: vec![u64::MAX; entries],
            targets: vec![0; entries],
            stats: BtbStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.tags.len() - 1)
    }

    /// Returns the predicted target for `pc`, if the BTB holds one.
    #[must_use]
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let i = self.index(pc);
        self.stats.lookups += 1;
        let hit = self.tags[i] == pc;
        self.stats.hits += u64::from(hit);
        hit.then_some(self.targets[i])
    }

    /// Cumulative lookup counters.
    #[must_use]
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Installs or refreshes the mapping `pc → target`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.tags[i] = pc;
        self.targets[i] = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fo4depth_util::{Rng64, Xoshiro256StarStar};

    fn accuracy<P: BranchPredictor>(p: &mut P, outcomes: &[(u64, bool)]) -> f64 {
        let mut right = 0;
        for &(pc, taken) in outcomes {
            if p.predict(pc) == taken {
                right += 1;
            }
            p.update(pc, taken);
        }
        right as f64 / outcomes.len() as f64
    }

    fn biased_stream(n: usize, sites: usize, bias: f64, seed: u64) -> Vec<(u64, bool)> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let site = rng.next_range(sites as u64);
                let p = if site.is_multiple_of(2) {
                    bias
                } else {
                    1.0 - bias
                };
                (0x1000 + site * 4, rng.next_bool(p))
            })
            .collect()
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(4096);
        let acc = accuracy(&mut p, &biased_stream(50_000, 64, 0.95, 1));
        assert!(acc > 0.90, "bimodal accuracy {acc}");
    }

    #[test]
    fn local_learns_periodic_patterns() {
        // A branch taken every third time defeats bimodal but not a local
        // history predictor.
        let stream: Vec<(u64, bool)> = (0..30_000).map(|i| (0x2000, i % 3 == 0)).collect();
        let mut local = LocalTwoLevel::new(1024, 10);
        let acc_local = accuracy(&mut local, &stream);
        let mut bi = Bimodal::new(4096);
        let acc_bi = accuracy(&mut bi, &stream);
        assert!(acc_local > 0.97, "local accuracy {acc_local}");
        assert!(acc_local > acc_bi);
    }

    #[test]
    fn gshare_exploits_global_correlation() {
        // Branch B is taken exactly when branch A was taken.
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut stream = Vec::new();
        for _ in 0..20_000 {
            let a = rng.next_bool(0.5);
            stream.push((0x3000, a));
            stream.push((0x3004, a));
        }
        let mut g = Gshare::new(4096);
        let acc = accuracy(&mut g, &stream);
        assert!(acc > 0.70, "gshare accuracy {acc}");
    }

    #[test]
    fn tournament_beats_or_matches_both_sides() {
        let stream = biased_stream(60_000, 128, 0.93, 7);
        let mut t = Tournament::alpha21264();
        let acc_t = accuracy(&mut t, &stream);
        let mut b = Bimodal::new(4096);
        let acc_b = accuracy(&mut b, &stream);
        assert!(acc_t > 0.88, "tournament accuracy {acc_t}");
        assert!(
            acc_t + 0.02 > acc_b,
            "tournament {acc_t} vs bimodal {acc_b}"
        );
    }

    #[test]
    fn tournament_handles_patterned_branch() {
        let stream: Vec<(u64, bool)> = (0..30_000).map(|i| (0x2000, i % 4 == 0)).collect();
        let mut t = Tournament::alpha21264();
        let acc = accuracy(&mut t, &stream);
        assert!(acc > 0.95, "tournament pattern accuracy {acc}");
    }

    #[test]
    fn perceptron_learns_biased_branches() {
        let mut p = Perceptron::new(512, 24);
        let acc = accuracy(&mut p, &biased_stream(50_000, 64, 0.95, 21));
        assert!(acc > 0.90, "perceptron accuracy {acc}");
    }

    #[test]
    fn perceptron_learns_long_patterns() {
        // A period-7 branch needs linearly separable history — easy for a
        // 24-bit perceptron, hard for a 2-bit counter.
        let stream: Vec<(u64, bool)> = (0..30_000).map(|i| (0x5000, i % 7 == 0)).collect();
        let mut p = Perceptron::new(512, 24);
        let acc = accuracy(&mut p, &stream);
        assert!(acc > 0.95, "perceptron pattern accuracy {acc}");
        let mut b = Bimodal::new(4096);
        let acc_b = accuracy(&mut b, &stream);
        assert!(acc > acc_b);
    }

    #[test]
    fn btb_miss_then_hit() {
        let mut btb = Btb::new(512);
        assert_eq!(btb.lookup(0x4000), None);
        btb.update(0x4000, 0x5000);
        assert_eq!(btb.lookup(0x4000), Some(0x5000));
        // A colliding PC evicts.
        let collide = 0x4000 + 512 * 4;
        btb.update(collide, 0x6000);
        assert_eq!(btb.lookup(0x4000), None);
        let s = btb.stats();
        assert_eq!((s.lookups, s.hits), (3, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            s.since(&BtbStats {
                lookups: 1,
                hits: 0
            })
            .lookups,
            2
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Bimodal::new(1000);
    }
}
