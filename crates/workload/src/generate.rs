//! The trace generator: profile + seed → deterministic instruction stream
//! with real register dataflow.

use fo4depth_isa::{ArchReg, Instruction, OpClass, Opcode};
use fo4depth_util::{Discrete, Geometric, Rng64, SplitMix64, Xoshiro256StarStar, Zipf};

use crate::profile::BenchProfile;

/// Number of rotating destination registers per bank; the remaining
/// architectural names are long-lived "globals".
const ROTATING_REGS: u8 = 24;

/// Code region base and span used for synthetic PCs.
const CODE_BASE: u64 = 0x12_0000;

/// An infinite, deterministic instruction stream.
///
/// Dependency realization: the generator remembers the destination register
/// of each of the last 64 instructions (per bank). A sampled dependency
/// distance `d` resolves a source operand to the destination written `d`
/// instructions ago, so the dataflow graph the simulator sees has exactly
/// the sampled distance distribution. Distances that fall on instructions
/// without a destination in the right bank, and a `far_source_fraction` of
/// all operands, fall back to long-lived registers (never a recent
/// producer).
///
/// # Examples
///
/// ```
/// use fo4depth_workload::{profiles, TraceGenerator};
/// let p = profiles::by_name("181.mcf").unwrap();
/// let trace: Vec<_> = TraceGenerator::new(p.clone(), 1).take(100).collect();
/// assert_eq!(trace.len(), 100);
/// // Determinism:
/// let again: Vec<_> = TraceGenerator::new(p.clone(), 1).take(100).collect();
/// assert_eq!(trace, again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchProfile,
    rng: Xoshiro256StarStar,
    mix: Discrete,
    dep: Geometric,
    site_pick: Zipf,
    hot_pick: Zipf,
    jump_pick: Zipf,
    /// Taken-probability per static branch site (NaN marks a correlated
    /// site, whose outcome follows the previous dynamic branch).
    site_bias: Vec<f64>,
    /// Outcome of the most recent conditional branch.
    last_branch_taken: bool,
    /// Stable target per static jump site (calls, returns, direct jumps).
    jump_targets: Vec<u64>,
    /// Ring of recent destination registers (both banks interleaved by age).
    recent: [Option<ArchReg>; 64],
    head: usize,
    /// Next rotating destination index per bank.
    next_int: u8,
    next_fp: u8,
    /// Ever-advancing pointer for fresh (compulsory-miss) references.
    fresh_addr: u64,
    /// Cursor of the cyclic walk over the L2-resident pool.
    pool_cursor: u64,
    /// Destination registers of the most recent integer loads (pointer
    /// chasing pool).
    recent_load_dests: [Option<ArchReg>; 4],
    load_dest_head: usize,
    pc: u64,
    emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchProfile::validate`].
    #[must_use]
    pub fn new(profile: BenchProfile, seed: u64) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid profile: {e}");
        }
        let mut seeder = SplitMix64::new(seed ^ SplitMix64::mix(hash_name(&profile.name)));
        let rng = Xoshiro256StarStar::seed_from_u64(seeder.next_u64());
        let mix = Discrete::new(&profile.mix.weights()).expect("validated mix");
        let dep = Geometric::with_mean(profile.mean_dep_distance).expect("validated distance");
        let site_pick =
            Zipf::new(profile.branches.static_sites, profile.branches.site_skew).expect("sites");
        let hot_pick = Zipf::new(profile.memory.hot_lines, 0.6).expect("hot lines");
        let jump_sites = (profile.branches.static_sites / 8).max(16);
        let jump_pick = Zipf::new(jump_sites, 1.0).expect("jump sites");

        // Per-site biases, deterministic in the seed.
        let mut bias_rng = Xoshiro256StarStar::seed_from_u64(seeder.next_u64());
        let site_bias = (0..profile.branches.static_sites)
            .map(|_| {
                if bias_rng.next_bool(profile.branches.correlated_fraction) {
                    // Correlated site: marked with NaN; resolved dynamically
                    // against the previous branch outcome.
                    f64::NAN
                } else if bias_rng.next_bool(profile.branches.biased_fraction) {
                    // Strongly biased site, taken or not-taken flavour.
                    if bias_rng.next_bool(0.6) {
                        profile.branches.bias_strength
                    } else {
                        1.0 - profile.branches.bias_strength
                    }
                } else {
                    // Weakly biased: outcome near coin-flip.
                    bias_rng.next_f64_range(0.35, 0.65)
                }
            })
            .collect();

        let mut target_rng = Xoshiro256StarStar::seed_from_u64(seeder.next_u64());
        let jump_targets = (0..jump_sites)
            .map(|_| CODE_BASE + target_rng.next_range(4096) * 4)
            .collect();

        Self {
            profile,
            rng,
            mix,
            dep,
            site_pick,
            hot_pick,
            jump_pick,
            site_bias,
            last_branch_taken: true,
            jump_targets,
            recent: [None; 64],
            head: 0,
            next_int: 0,
            next_fp: 0,
            fresh_addr: 0x4000_0000,
            pool_cursor: 0,
            recent_load_dests: [None; 4],
            load_dest_head: 0,
            pc: CODE_BASE,
            emitted: 0,
        }
    }

    /// The profile driving this generator.
    #[must_use]
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    /// Number of instructions generated so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Addresses a simulator should touch before timing starts so the
    /// caches hold this workload's resident sets — the stand-in for the
    /// paper's 500 M-instruction fast-forward.
    #[must_use]
    pub fn prewarm_addresses(&self) -> Vec<u64> {
        let mut addrs = Vec::new();
        // L2 pool, then hot lines last so the hot set ends up most recent
        // in the L1.
        for line in 0..Self::L2_POOL_LINES {
            addrs.push(0x2000_0000 + line * 64);
        }
        for line in 0..self.profile.memory.hot_lines as u64 {
            addrs.push(0x7fff_0000 + line * 64);
        }
        addrs
    }

    /// Resolves a source operand at the sampled dependency distance,
    /// preferring a real recent producer in the wanted bank.
    fn source(&mut self, fp: bool) -> ArchReg {
        let far = self.rng.next_bool(self.profile.far_source_fraction);
        if !far {
            let d = self.dep.sample(&mut self.rng) as usize;
            if d <= self.recent.len() {
                let idx = (self.head + self.recent.len() - d) % self.recent.len();
                if let Some(reg) = self.recent[idx] {
                    let is_fp = reg.bank() == fo4depth_isa::RegBank::Fp;
                    if is_fp == fp {
                        return reg;
                    }
                }
            }
        }
        // Long-lived register (r24..r31 / f24..f31).
        let idx = ROTATING_REGS + self.rng.next_range(8) as u8;
        if fp {
            ArchReg::fp(idx)
        } else {
            ArchReg::int(idx)
        }
    }

    /// Allocates the next rotating destination register.
    fn dest(&mut self, fp: bool) -> ArchReg {
        if fp {
            let r = ArchReg::fp(self.next_fp);
            self.next_fp = (self.next_fp + 1) % ROTATING_REGS;
            r
        } else {
            let r = ArchReg::int(self.next_int);
            self.next_int = (self.next_int + 1) % ROTATING_REGS;
            r
        }
    }

    /// A recent integer-load destination, if any (for pointer chasing).
    fn recent_load_dest(&mut self) -> Option<ArchReg> {
        let pick = self.rng.next_range(self.recent_load_dests.len() as u64) as usize;
        self.recent_load_dests[pick]
            .or_else(|| self.recent_load_dests.iter().flatten().next().copied())
    }

    fn push_recent(&mut self, dest: Option<ArchReg>) {
        self.recent[self.head] = dest;
        self.head = (self.head + 1) % self.recent.len();
    }

    /// Number of lines in the L2-resident pool: 512 KB, comfortably above
    /// the 64 KB L1 yet within a mid-size L2 — so that shrinking the L2
    /// below half a megabyte visibly costs hits (the §4.5 trade-off).
    const L2_POOL_LINES: u64 = 8192;

    /// Generates a data address according to the memory model's reuse
    /// classes (see [`MemoryModel`](crate::MemoryModel)).
    fn data_address(&mut self) -> u64 {
        let m = &self.profile.memory;
        let u = self.rng.next_f64();
        if u < m.memory {
            // Fresh line: compulsory miss all the way to memory.
            self.fresh_addr += 64;
            self.fresh_addr
        } else if u < m.memory + m.l2_resident {
            // Cyclic walk over the L2-resident pool: the reuse distance of
            // every line is exactly the pool size, which exceeds the L1 but
            // not the L2 — a guaranteed L1 miss and (once warm) L2 hit.
            let line = self.pool_cursor;
            self.pool_cursor = (self.pool_cursor + 1) % Self::L2_POOL_LINES;
            0x2000_0000 + line * 64 + self.rng.next_range(8) * 8
        } else {
            // Hot line (stack/global), Zipf-skewed, L1-resident.
            let line = self.hot_pick.sample(&mut self.rng) as u64;
            0x7fff_0000 + line * 64 + self.rng.next_range(8) * 8
        }
    }

    fn gen_one(&mut self) -> Instruction {
        let class = match self.mix.sample(&mut self.rng) {
            0 => OpClass::IntAlu,
            1 => OpClass::IntMult,
            2 => OpClass::FpAdd,
            3 => OpClass::FpMult,
            4 => OpClass::FpDiv,
            5 => OpClass::FpSqrt,
            6 => OpClass::Load,
            7 => OpClass::Store,
            8 => OpClass::Branch,
            _ => OpClass::Jump,
        };
        let opcode = Opcode::representative(class);
        let pc = self.pc;
        self.pc += 4;

        let inst = match class {
            OpClass::IntAlu | OpClass::IntMult => {
                let s1 = self.source(false);
                let s2 = self.source(false);
                let d = self.dest(false);
                self.push_recent(Some(d));
                Instruction::alu(opcode, s1, s2, d)
            }
            OpClass::FpAdd | OpClass::FpMult | OpClass::FpDiv | OpClass::FpSqrt => {
                let s1 = self.source(true);
                let s2 = self.source(true);
                let d = self.dest(true);
                self.push_recent(Some(d));
                Instruction::alu(opcode, s1, s2, d)
            }
            OpClass::Load => {
                // Pointer chasing: some loads' base addresses are produced
                // by recent loads, serializing on the load-use loop.
                let chained = self.rng.next_bool(self.profile.load_chain_fraction);
                let base = match (chained, self.recent_load_dest()) {
                    (true, Some(r)) => r,
                    _ => self.source(false),
                };
                let fp_dest = self.profile.mix.fp_add + self.profile.mix.fp_mult > 0.05
                    && self.rng.next_bool(0.5);
                let d = self.dest(fp_dest);
                self.push_recent(Some(d));
                if !fp_dest {
                    self.recent_load_dests[self.load_dest_head] = Some(d);
                    self.load_dest_head = (self.load_dest_head + 1) % self.recent_load_dests.len();
                }
                let addr = self.data_address();
                let mut i = Instruction::load(opcode, d, base, addr);
                if fp_dest {
                    i.opcode = Opcode::Ldt;
                }
                i
            }
            OpClass::Store => {
                let val = self.source(false);
                let base = self.source(false);
                self.push_recent(None);
                let addr = self.data_address();
                Instruction::store(opcode, val, base, addr)
            }
            OpClass::Branch => {
                let site = self.site_pick.sample(&mut self.rng);
                let taken = {
                    let p = self.site_bias[site];
                    if p.is_nan() {
                        // Correlated site: follow the previous branch with
                        // high fidelity — long agreeing runs that history
                        // predictors learn exactly and counters track well.
                        let follow = self.rng.next_bool(0.97);
                        if follow {
                            self.last_branch_taken
                        } else {
                            !self.last_branch_taken
                        }
                    } else {
                        self.rng.next_bool(p)
                    }
                };
                self.last_branch_taken = taken;
                // Each site has a stable PC and a mostly-backward target
                // (loop-shaped); both are deterministic in the site id.
                // Sites are packed densely so predictor and BTB indexing
                // behave as for real code layouts.
                let site_pc = CODE_BASE + 0x100 + (site as u64) * 4;
                let span = 4 * (self.profile.branches.mean_block as u64 + site as u64 % 32 + 1);
                let target = if site % 8 < 6 {
                    site_pc.saturating_sub(span) // backward: loop branch
                } else {
                    site_pc + span // forward: if/else
                };
                let cond = self.source(false);
                self.push_recent(None);
                let mut i = Instruction::branch(opcode, cond, taken, target);
                i.pc = site_pc;
                self.pc = if taken { target } else { site_pc + 4 };
                return {
                    self.emitted += 1;
                    i
                };
            }
            OpClass::Jump => {
                self.push_recent(None);
                // Jumps come from stable sites (calls/returns/direct
                // branches learn their targets); a small fraction behave as
                // indirect jumps with a handful of alternating targets.
                let site = self.jump_pick.sample(&mut self.rng);
                // Jump sites live just past the branch-site region so the
                // two never alias in direct-mapped predictor structures.
                let site_pc = CODE_BASE
                    + 0x100
                    + (self.profile.branches.static_sites as u64 + site as u64) * 4;
                let target = if self.rng.next_bool(0.03) {
                    self.jump_targets[site] + 64 * (1 + self.rng.next_range(3))
                } else {
                    self.jump_targets[site]
                };
                let mut i = Instruction::jump(opcode, target);
                i.pc = site_pc;
                self.pc = target;
                return {
                    self.emitted += 1;
                    i
                };
            }
            OpClass::Nop => {
                self.push_recent(None);
                Instruction::nop()
            }
        };
        self.emitted += 1;
        inst.at_pc(pc)
    }
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        Some(self.gen_one())
    }
}

/// Stable 64-bit hash of a benchmark name (FNV-1a) so different benchmarks
/// get decorrelated streams even under the same user seed.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn deterministic_for_same_seed() {
        let p = profiles::by_name("164.gzip").unwrap();
        let a: Vec<_> = TraceGenerator::new(p.clone(), 7).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(p.clone(), 7).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = profiles::by_name("164.gzip").unwrap();
        let a: Vec<_> = TraceGenerator::new(p.clone(), 1).take(200).collect();
        let b: Vec<_> = TraceGenerator::new(p.clone(), 2).take(200).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_benchmarks_differ_under_same_seed() {
        let a: Vec<_> = TraceGenerator::new(profiles::by_name("164.gzip").unwrap().clone(), 1)
            .take(200)
            .collect();
        let b: Vec<_> = TraceGenerator::new(profiles::by_name("175.vpr").unwrap().clone(), 1)
            .take(200)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn memory_ops_have_addresses_and_alu_ops_do_not() {
        let p = profiles::by_name("181.mcf").unwrap();
        for i in TraceGenerator::new(p.clone(), 3).take(2000) {
            match i.op_class() {
                OpClass::Load | OpClass::Store => assert!(i.mem_addr.is_some()),
                _ => assert!(i.mem_addr.is_none()),
            }
            if i.op_class().is_control() {
                assert!(i.branch.is_some());
            }
        }
    }

    #[test]
    fn fp_benchmark_emits_fp_ops() {
        let p = profiles::by_name("171.swim").unwrap();
        let fp = TraceGenerator::new(p.clone(), 3)
            .take(2000)
            .filter(|i| i.op_class().is_fp())
            .count();
        assert!(fp > 400, "only {fp} FP ops in 2000");
    }

    #[test]
    fn branch_sites_repeat() {
        // The same static site must reappear with the same PC so a
        // predictor can learn it.
        let p = profiles::by_name("164.gzip").unwrap();
        let pcs: Vec<u64> = TraceGenerator::new(p.clone(), 5)
            .take(5000)
            .filter(|i| i.op_class() == OpClass::Branch)
            .map(|i| i.pc)
            .collect();
        assert!(pcs.len() > 300);
        let distinct: std::collections::HashSet<_> = pcs.iter().collect();
        assert!(distinct.len() < pcs.len() / 2, "sites never repeat");
    }

    #[test]
    fn emitted_counts() {
        let p = profiles::by_name("164.gzip").unwrap();
        let mut g = TraceGenerator::new(p.clone(), 1);
        for _ in 0..100 {
            let _ = g.next();
        }
        assert_eq!(g.emitted(), 100);
    }
}
