//! The eighteen SPEC CPU2000 benchmark profiles of the paper's Table 2.
//!
//! Parameters are loosely based on published characterizations of the suite
//! (mix, branch behaviour, memory footprint) and then calibrated as a set so
//! that the Alpha-21264-configured out-of-order core reproduces the IPC
//! ordering the paper relies on: vector FP > integer > non-vector FP, with
//! integer codes dependency- and branch-limited and vector codes
//! memory-streaming with ample ILP.

use crate::profile::{BenchClass, BenchProfile, BranchModel, MemoryModel, OpMix};

fn int_profile(
    name: &str,
    dep: f64,
    far: f64,
    chain: f64,
    branches: BranchModel,
    memory: MemoryModel,
    mix: OpMix,
) -> BenchProfile {
    BenchProfile {
        name: name.into(),
        class: BenchClass::Integer,
        mix,
        mean_dep_distance: dep,
        far_source_fraction: far,
        load_chain_fraction: chain,
        branches,
        memory,
    }
}

#[allow(clippy::too_many_arguments)]
fn fp(
    name: &str,
    class: BenchClass,
    dep: f64,
    far: f64,
    chain: f64,
    b: BranchModel,
    m: MemoryModel,
    mix: OpMix,
) -> BenchProfile {
    BenchProfile {
        name: name.into(),
        class,
        mix,
        mean_dep_distance: dep,
        far_source_fraction: far,
        load_chain_fraction: chain,
        branches: b,
        memory: m,
    }
}

/// All 18 profiles, in Table 2 order (9 integer, 4 vector FP, 5 non-vector
/// FP).
///
/// # Examples
///
/// ```
/// use fo4depth_workload::{profiles, BenchClass};
/// let all = profiles::all();
/// assert_eq!(all.len(), 18);
/// assert_eq!(all.iter().filter(|p| p.class == BenchClass::Integer).count(), 9);
/// ```
#[must_use]
#[allow(clippy::vec_init_then_push)] // 18 structured entries read best as a sequence
pub fn all() -> Vec<BenchProfile> {
    let mut v = Vec::with_capacity(18);

    // ---- SPECint 2000 (Table 2, left column) --------------------------
    // 164.gzip: compression; tight dependency chains over small tables,
    // highly predictable branches, small working set.
    v.push(int_profile(
        "164.gzip",
        3.2,
        0.30,
        0.32,
        BranchModel {
            static_sites: 256,
            biased_fraction: 0.92,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 512 * 1024,
            l2_resident: 0.025,
            memory: 0.002,
            hot_lines: 672,
        },
        OpMix::integer(),
    ));
    // 175.vpr: place & route; pointer-y graphs, moderate working set.
    v.push(int_profile(
        "175.vpr",
        3.5,
        0.33,
        0.58,
        BranchModel {
            static_sites: 768,
            biased_fraction: 0.89,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 1024 * 1024,
            l2_resident: 0.035,
            memory: 0.004,
            hot_lines: 768,
        },
        OpMix::integer(),
    ));
    // 176.gcc: compiler; huge branchy code, many static sites.
    v.push(int_profile(
        "176.gcc",
        3.6,
        0.36,
        0.48,
        BranchModel {
            static_sites: 2048,
            biased_fraction: 0.90,
            mean_block: 5.0,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 2 * 1024 * 1024,
            l2_resident: 0.05,
            memory: 0.008,
            hot_lines: 960,
        },
        OpMix {
            branch: 0.19,
            jump: 0.05,
            ..OpMix::integer()
        },
    ));
    // 181.mcf: single-source shortest paths over a huge sparse graph;
    // notorious pointer-chasing cache thrasher.
    v.push(int_profile(
        "181.mcf",
        2.9,
        0.27,
        0.88,
        BranchModel {
            static_sites: 192,
            biased_fraction: 0.88,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 96 * 1024 * 1024,
            l2_resident: 0.10,
            memory: 0.10,
            hot_lines: 384,
        },
        OpMix {
            load: 0.33,
            int_alu: 0.36,
            ..OpMix::integer()
        },
    ));
    // 197.parser: dictionary link-grammar parser; branchy, hard branches.
    v.push(int_profile(
        "197.parser",
        3.3,
        0.31,
        0.62,
        BranchModel {
            static_sites: 1024,
            biased_fraction: 0.89,
            mean_block: 5.0,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 2 * 1024 * 1024,
            l2_resident: 0.04,
            memory: 0.006,
            hot_lines: 768,
        },
        OpMix::integer(),
    ));
    // 252.eon: C++ ray tracer; int benchmark with real FP content.
    v.push(int_profile(
        "252.eon",
        4.0,
        0.36,
        0.32,
        BranchModel {
            static_sites: 512,
            biased_fraction: 0.90,
            mean_block: 8.0,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 512 * 1024,
            l2_resident: 0.015,
            memory: 0.002,
            hot_lines: 576,
        },
        OpMix {
            fp_add: 0.06,
            fp_mult: 0.05,
            int_alu: 0.34,
            branch: 0.11,
            ..OpMix::integer()
        },
    ));
    // 253.perlbmk: interpreter; indirect-jump heavy, big code footprint.
    v.push(int_profile(
        "253.perlbmk",
        3.4,
        0.34,
        0.48,
        BranchModel {
            static_sites: 1536,
            biased_fraction: 0.87,
            mean_block: 5.5,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 2 * 1024 * 1024,
            l2_resident: 0.025,
            memory: 0.004,
            hot_lines: 768,
        },
        OpMix {
            jump: 0.06,
            ..OpMix::integer()
        },
    ));
    // 256.bzip2: compression; like gzip with a larger working set.
    v.push(int_profile(
        "256.bzip2",
        3.2,
        0.30,
        0.32,
        BranchModel {
            static_sites: 256,
            biased_fraction: 0.88,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 4 * 1024 * 1024,
            l2_resident: 0.04,
            memory: 0.010,
            hot_lines: 576,
        },
        OpMix::integer(),
    ));
    // 300.twolf: placement/routing annealer; hard branches, medium set.
    v.push(int_profile(
        "300.twolf",
        3.4,
        0.32,
        0.58,
        BranchModel {
            static_sites: 640,
            biased_fraction: 0.86,
            ..BranchModel::integer()
        },
        MemoryModel {
            working_set: 1024 * 1024,
            l2_resident: 0.06,
            memory: 0.005,
            hot_lines: 672,
        },
        OpMix::integer(),
    ));

    // ---- Vector FP (Table 2, middle column) ---------------------------
    // 171.swim: shallow-water stencils; the archetypal streaming code.
    v.push(fp(
        "171.swim",
        BenchClass::VectorFp,
        9.5,
        0.52,
        0.04,
        BranchModel::vector_fp(),
        MemoryModel {
            working_set: 48 * 1024 * 1024,
            l2_resident: 0.18,
            memory: 0.014,
            hot_lines: 768,
        },
        OpMix::vector_fp(),
    ));
    // 172.mgrid: multigrid solver.
    v.push(fp(
        "172.mgrid",
        BenchClass::VectorFp,
        9.0,
        0.50,
        0.04,
        BranchModel::vector_fp(),
        MemoryModel {
            working_set: 56 * 1024 * 1024,
            l2_resident: 0.14,
            memory: 0.011,
            hot_lines: 768,
        },
        OpMix {
            fp_mult: 0.22,
            ..OpMix::vector_fp()
        },
    ));
    // 173.applu: SSOR PDE solver.
    v.push(fp(
        "173.applu",
        BenchClass::VectorFp,
        8.6,
        0.48,
        0.04,
        BranchModel::vector_fp(),
        MemoryModel {
            working_set: 40 * 1024 * 1024,
            l2_resident: 0.13,
            memory: 0.011,
            hot_lines: 672,
        },
        OpMix {
            fp_div: 0.012,
            ..OpMix::vector_fp()
        },
    ));
    // 183.equake: earthquake FEM; sparse but still vector-classified.
    v.push(fp(
        "183.equake",
        BenchClass::VectorFp,
        8.0,
        0.45,
        0.06,
        BranchModel {
            mean_block: 24.0,
            ..BranchModel::vector_fp()
        },
        MemoryModel {
            working_set: 28 * 1024 * 1024,
            l2_resident: 0.15,
            memory: 0.017,
            hot_lines: 576,
        },
        OpMix {
            load: 0.30,
            ..OpMix::vector_fp()
        },
    ));

    // ---- Non-vector FP (Table 2, right column) ------------------------
    // 177.mesa: software GL rasterizer; FP with integer control flow.
    v.push(fp(
        "177.mesa",
        BenchClass::NonVectorFp,
        4.8,
        0.35,
        0.10,
        BranchModel {
            static_sites: 384,
            site_skew: 0.9,
            biased_fraction: 0.92,
            bias_strength: 0.98,
            correlated_fraction: 0.08,
            mean_block: 9.0,
        },
        MemoryModel {
            working_set: 3 * 1024 * 1024,
            l2_resident: 0.020,
            memory: 0.002,
            hot_lines: 672,
        },
        OpMix::non_vector_fp(),
    ));
    // 178.galgel: Galerkin fluid dynamics; blocked dense algebra.
    v.push(fp(
        "178.galgel",
        BenchClass::NonVectorFp,
        6.0,
        0.40,
        0.08,
        BranchModel {
            static_sites: 128,
            site_skew: 1.0,
            biased_fraction: 0.95,
            bias_strength: 0.99,
            correlated_fraction: 0.06,
            mean_block: 18.0,
        },
        MemoryModel {
            working_set: 12 * 1024 * 1024,
            l2_resident: 0.08,
            memory: 0.012,
            hot_lines: 576,
        },
        OpMix {
            fp_add: 0.19,
            fp_mult: 0.16,
            ..OpMix::non_vector_fp()
        },
    ));
    // 179.art: neural-network image recognition; tiny kernel, thrashy set.
    v.push(fp(
        "179.art",
        BenchClass::NonVectorFp,
        4.4,
        0.32,
        0.15,
        BranchModel {
            static_sites: 96,
            site_skew: 1.1,
            biased_fraction: 0.92,
            bias_strength: 0.985,
            correlated_fraction: 0.08,
            mean_block: 11.0,
        },
        MemoryModel {
            working_set: 24 * 1024 * 1024,
            l2_resident: 0.20,
            memory: 0.040,
            hot_lines: 384,
        },
        OpMix {
            load: 0.30,
            fp_mult: 0.15,
            ..OpMix::non_vector_fp()
        },
    ));
    // 188.ammp: molecular dynamics; divide/sqrt heavy, pointer lists.
    v.push(fp(
        "188.ammp",
        BenchClass::NonVectorFp,
        4.1,
        0.31,
        0.40,
        BranchModel {
            static_sites: 256,
            site_skew: 0.9,
            biased_fraction: 0.90,
            bias_strength: 0.98,
            correlated_fraction: 0.08,
            mean_block: 10.0,
        },
        MemoryModel {
            working_set: 20 * 1024 * 1024,
            l2_resident: 0.07,
            memory: 0.020,
            hot_lines: 576,
        },
        OpMix {
            fp_div: 0.03,
            fp_sqrt: 0.012,
            ..OpMix::non_vector_fp()
        },
    ));
    // 189.lucas: Lucas-Lehmer primality FFTs; long FP chains.
    v.push(fp(
        "189.lucas",
        BenchClass::NonVectorFp,
        5.6,
        0.38,
        0.08,
        BranchModel {
            static_sites: 64,
            site_skew: 1.2,
            biased_fraction: 0.97,
            bias_strength: 0.995,
            correlated_fraction: 0.05,
            mean_block: 26.0,
        },
        MemoryModel {
            working_set: 16 * 1024 * 1024,
            l2_resident: 0.09,
            memory: 0.015,
            hot_lines: 576,
        },
        OpMix {
            fp_add: 0.20,
            fp_mult: 0.17,
            branch: 0.04,
            ..OpMix::non_vector_fp()
        },
    ));

    debug_assert!(v.iter().all(|p| p.validate().is_ok()));
    v
}

/// Looks a profile up by its SPEC-style name.
#[must_use]
pub fn by_name(name: &str) -> Option<BenchProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// The nine integer profiles.
#[must_use]
pub fn integer() -> Vec<BenchProfile> {
    all()
        .into_iter()
        .filter(|p| p.class == BenchClass::Integer)
        .collect()
}

/// The four vector-FP profiles.
#[must_use]
pub fn vector_fp() -> Vec<BenchProfile> {
    all()
        .into_iter()
        .filter(|p| p.class == BenchClass::VectorFp)
        .collect()
}

/// The five non-vector-FP profiles.
#[must_use]
pub fn non_vector_fp() -> Vec<BenchProfile> {
    all()
        .into_iter()
        .filter(|p| p.class == BenchClass::NonVectorFp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts() {
        assert_eq!(all().len(), 18);
        assert_eq!(integer().len(), 9);
        assert_eq!(vector_fp().len(), 4);
        assert_eq!(non_vector_fp().len(), 5);
    }

    #[test]
    fn all_profiles_validate() {
        for p in all() {
            assert!(p.validate().is_ok(), "{} invalid", p.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("181.mcf").is_some());
        assert!(by_name("999.nope").is_none());
    }

    #[test]
    fn vector_profiles_have_longer_dependencies_than_integer() {
        let int_max = integer()
            .iter()
            .map(|p| p.mean_dep_distance)
            .fold(0.0, f64::max);
        let vec_min = vector_fp()
            .iter()
            .map(|p| p.mean_dep_distance)
            .fold(f64::INFINITY, f64::min);
        assert!(vec_min > int_max);
    }

    #[test]
    fn table2_membership_matches_paper() {
        let names: Vec<String> = vector_fp().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["171.swim", "172.mgrid", "173.applu", "183.equake"]
        );
        let nv: Vec<String> = non_vector_fp().into_iter().map(|p| p.name).collect();
        assert_eq!(
            nv,
            vec!["177.mesa", "178.galgel", "179.art", "188.ammp", "189.lucas"]
        );
    }
}
