//! Synthetic SPEC CPU2000-inspired workload generators.
//!
//! The paper drives its pipeline study with the SPEC 2000 suite (Table 2: 9
//! integer benchmarks, 4 "vector" floating-point benchmarks with ample ILP,
//! and 5 "non-vector" FP benchmarks), executed on a validated Alpha 21264
//! simulator. SPEC binaries are license-gated, so this crate substitutes
//! *statistically calibrated* synthetic instruction streams: each benchmark
//! in Table 2 gets a [`BenchProfile`] describing
//!
//! * the instruction mix (ALU / multiply / FP / load / store / branch),
//! * the register dependency structure (geometric dependency distances —
//!   short for dependency-bound integer codes, long for vector codes),
//! * branch behaviour (number of static sites, per-site bias, Zipf-skewed
//!   site selection — which determines achievable prediction accuracy), and
//! * the memory reference pattern (working-set size, streaming fraction,
//!   hot-set skew — which determines cache miss rates).
//!
//! A [`TraceGenerator`] turns a profile plus a seed into a deterministic
//! stream of [`Instruction`](fo4depth_isa::Instruction)s with *real*
//! register dataflow: a sampled dependency distance `d` makes an operand of
//! the current instruction the destination of the instruction `d` earlier,
//! so an out-of-order core extracts exactly the parallelism the profile
//! encodes.
//!
//! When the same trace is replayed many times (the depth sweeps run every
//! benchmark at 15 clock points), a [`TraceArena`] materializes the
//! generator's stream once into a compact pre-decoded buffer and hands out
//! [`TraceCursor`]s that replay it bit-identically at slice-read cost.
//!
//! What this preserves from the paper (and what it cannot): aggregate IPC,
//! branch misprediction rates, and cache behaviour are matched at the level
//! that drives pipeline-depth conclusions; program semantics, phase
//! behaviour, and instruction-footprint effects are not modelled. See
//! DESIGN.md §2.
//!
//! # Examples
//!
//! ```
//! use fo4depth_workload::{profiles, TraceGenerator};
//!
//! let profile = profiles::by_name("164.gzip").unwrap();
//! let mut trace = TraceGenerator::new(profile.clone(), 42);
//! let first = trace.next().unwrap();
//! println!("{first}");
//! ```

pub mod arena;
pub mod generate;
pub mod kernels;
pub mod profile;
pub mod profiles;
pub mod stats;
pub mod traceio;

pub use arena::{SharedCursor, SharedTrace, TraceArena, TraceCursor};
pub use generate::TraceGenerator;
pub use profile::{BenchClass, BenchProfile, BranchModel, MemoryModel, OpMix};
pub use stats::TraceStats;
pub use traceio::{record, TraceReader};
