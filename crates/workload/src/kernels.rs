//! Analytic verification kernels: tiny synthetic programs whose steady-state
//! IPC on an ideal machine is known in closed form, used to verify the
//! simulators' timing rules independently of the statistical workloads.
//!
//! | kernel | ideal OoO IPC at the Alpha point |
//! |---|---|
//! | [`dependent_chain`] | 1 / int-ALU latency (= 1) |
//! | [`independent_alu`] | integer issue width (= 4) |
//! | [`pointer_chase`] | 1 / L1 load-use latency (= 1/3) |
//! | [`fp_chain`] | 1 / FP-add latency (= 1/4) |
//! | [`interleaved_chains`] | min(chains, width) / latency |
//!
//! Each returns an infinite iterator suitable for the cores' constructors.

use fo4depth_isa::{ArchReg, Instruction, Opcode};

/// A single serial dependence chain through `r1`: IPC can never exceed the
/// reciprocal of the ALU latency.
pub fn dependent_chain() -> impl Iterator<Item = Instruction> {
    (0u64..).map(|i| {
        Instruction::alu(
            Opcode::Addq,
            ArchReg::int(1),
            ArchReg::int(2),
            ArchReg::int(1),
        )
        .at_pc(0x1000 + i * 4)
    })
}

/// Fully independent ALU operations over a rotating destination set: IPC is
/// bounded only by machine width.
pub fn independent_alu() -> impl Iterator<Item = Instruction> {
    (0u64..).map(|i| {
        Instruction::alu(
            Opcode::Addq,
            ArchReg::int(30),
            ArchReg::int(31),
            ArchReg::int((i % 20) as u8),
        )
        .at_pc(0x1000 + i * 4)
    })
}

/// A serial chain of loads, each consuming the previous load's result as
/// its base — the purest load-use loop. All addresses fall in one hot line
/// so every access is an L1 hit.
pub fn pointer_chase() -> impl Iterator<Item = Instruction> {
    (0u64..).map(|i| {
        Instruction::load(Opcode::Ldq, ArchReg::int(1), ArchReg::int(1), 0x7fff_0000)
            .at_pc(0x1000 + i * 4)
    })
}

/// A serial FP-add chain: IPC = 1 / FP-add latency.
pub fn fp_chain() -> impl Iterator<Item = Instruction> {
    (0u64..).map(|i| {
        Instruction::alu(Opcode::Addt, ArchReg::fp(1), ArchReg::fp(2), ArchReg::fp(1))
            .at_pc(0x1000 + i * 4)
    })
}

/// `chains` independent serial ALU chains interleaved round-robin: the
/// machine can sustain one instruction per chain per latency, capped by
/// issue width.
///
/// # Panics
///
/// Panics if `chains` is 0 or exceeds 16.
pub fn interleaved_chains(chains: u8) -> impl Iterator<Item = Instruction> {
    assert!((1..=16).contains(&chains), "1..=16 chains supported");
    (0u64..).map(move |i| {
        let c = (i % u64::from(chains)) as u8;
        Instruction::alu(
            Opcode::Addq,
            ArchReg::int(c),
            ArchReg::int(20),
            ArchReg::int(c),
        )
        .at_pc(0x1000 + i * 4)
    })
}

/// A loop-shaped branch stream: every `body` instructions, a perfectly
/// biased taken branch back to the top — exercises fetch fragmentation and
/// the taken-branch re-steer bubble without mispredictions.
///
/// # Panics
///
/// Panics if `body` is zero.
pub fn tight_loop(body: u64) -> impl Iterator<Item = Instruction> {
    assert!(body > 0, "loop needs a body");
    (0u64..).map(move |i| {
        let pos = i % (body + 1);
        if pos == body {
            Instruction::branch(Opcode::Bne, ArchReg::int(9), true, 0x1000).at_pc(0x1000 + body * 4)
        } else {
            Instruction::alu(
                Opcode::Addq,
                ArchReg::int(30),
                ArchReg::int(31),
                ArchReg::int((pos % 16) as u8),
            )
            .at_pc(0x1000 + pos * 4)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fo4depth_isa::OpClass;

    #[test]
    fn kernels_produce_expected_shapes() {
        assert!(dependent_chain().take(10).all(|i| i.dest == i.src1));
        assert!(independent_alu()
            .take(10)
            .all(|i| i.op_class() == OpClass::IntAlu));
        assert!(pointer_chase()
            .take(10)
            .all(|i| { i.op_class() == OpClass::Load && i.dest == i.src1 }));
        assert!(fp_chain().take(10).all(|i| i.op_class().is_fp()));
    }

    #[test]
    fn interleaved_chains_rotate() {
        let insts: Vec<_> = interleaved_chains(3).take(6).collect();
        assert_eq!(insts[0].dest, insts[3].dest);
        assert_ne!(insts[0].dest, insts[1].dest);
    }

    #[test]
    fn tight_loop_branches_at_the_bottom() {
        let insts: Vec<_> = tight_loop(4).take(10).collect();
        assert_eq!(insts[4].op_class(), OpClass::Branch);
        assert!(insts[4].branch.unwrap().taken);
        assert_eq!(insts[5].pc, 0x1000);
    }

    #[test]
    #[should_panic(expected = "chains supported")]
    fn interleaved_rejects_zero() {
        let _ = interleaved_chains(0);
    }
}
