//! Trace recording and replay.
//!
//! The simulators are trace-driven; nothing restricts them to the synthetic
//! generators. This module defines a simple line-oriented text format so
//! traces can be captured, inspected, diffed, and replayed — and so users
//! with *real* program traces (from a functional simulator or a binary
//! instrumentation tool) can drive the timing models with them.
//!
//! # Format
//!
//! One instruction per line, pipe-separated fields:
//!
//! ```text
//! pc|opcode|dest|src1|src2|mem_addr|taken|target
//! ```
//!
//! Register fields use the ISA's display names (`r5`, `f12`) or `-` for
//! absent; `mem_addr`/`target` are hex; `taken` is `t`, `n`, or `-`.
//!
//! # Examples
//!
//! ```
//! use fo4depth_workload::{profiles, TraceGenerator};
//! use fo4depth_workload::traceio::{parse_line, render_line};
//!
//! let p = profiles::by_name("164.gzip").unwrap();
//! for inst in TraceGenerator::new(p, 1).take(50) {
//!     let line = render_line(&inst);
//!     let back = parse_line(&line).unwrap();
//!     assert_eq!(inst, back);
//! }
//! ```

use std::fmt::Write as _;
use std::io::{BufRead, Write};

use fo4depth_isa::{ArchReg, BranchInfo, Instruction, Opcode};

/// Error from parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number, when parsing a stream.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn render_reg(r: Option<ArchReg>) -> String {
    match r {
        Some(r) => r.to_string(),
        None => "-".into(),
    }
}

fn parse_reg(s: &str) -> Result<Option<ArchReg>, String> {
    if s == "-" {
        return Ok(None);
    }
    let (bank, idx) = s.split_at(1);
    let idx: u8 = idx.parse().map_err(|_| format!("bad register {s}"))?;
    if idx >= 32 {
        return Err(format!("register index out of range in {s}"));
    }
    match bank {
        "r" => Ok(Some(ArchReg::int(idx))),
        "f" => Ok(Some(ArchReg::fp(idx))),
        _ => Err(format!("bad register bank in {s}")),
    }
}

fn parse_opcode(s: &str) -> Result<Opcode, String> {
    use Opcode::*;
    Ok(match s {
        "addq" => Addq,
        "subq" => Subq,
        "and" => And,
        "bis" => Bis,
        "xor" => Xor,
        "sll" => Sll,
        "srl" => Srl,
        "cmpeq" => Cmpeq,
        "cmplt" => Cmplt,
        "lda" => Lda,
        "mulq" => Mulq,
        "addt" => Addt,
        "subt" => Subt,
        "cvttq" => Cvttq,
        "mult" => Mult,
        "divt" => Divt,
        "sqrtt" => Sqrtt,
        "ldq" => Ldq,
        "ldl" => Ldl,
        "ldt" => Ldt,
        "stq" => Stq,
        "stl" => Stl,
        "stt" => Stt,
        "beq" => Beq,
        "bne" => Bne,
        "blt" => Blt,
        "bge" => Bge,
        "br" => Br,
        "jsr" => Jsr,
        "ret" => Ret,
        "nop" => Nop,
        other => return Err(format!("unknown opcode {other}")),
    })
}

/// Renders one instruction as a trace line (no trailing newline).
#[must_use]
pub fn render_line(inst: &Instruction) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:x}|{}|{}|{}|{}|",
        inst.pc,
        inst.opcode,
        render_reg(inst.dest),
        render_reg(inst.src1),
        render_reg(inst.src2),
    );
    match inst.mem_addr {
        Some(a) => {
            let _ = write!(out, "{a:x}");
        }
        None => out.push('-'),
    }
    match inst.branch {
        Some(b) => {
            let _ = write!(out, "|{}|{:x}", if b.taken { 't' } else { 'n' }, b.target);
        }
        None => out.push_str("|-|-"),
    }
    out
}

/// Parses one trace line.
///
/// # Errors
///
/// Returns a description of the first malformed field (line number 0; the
/// stream reader fills in real numbers).
pub fn parse_line(line: &str) -> Result<Instruction, ParseTraceError> {
    let err = |message: String| ParseTraceError { line: 0, message };
    let fields: Vec<&str> = line.trim_end().split('|').collect();
    if fields.len() != 8 {
        return Err(err(format!("expected 8 fields, got {}", fields.len())));
    }
    let pc = u64::from_str_radix(fields[0], 16).map_err(|_| err("bad pc".into()))?;
    let opcode = parse_opcode(fields[1]).map_err(err)?;
    let dest = parse_reg(fields[2]).map_err(err)?;
    let src1 = parse_reg(fields[3]).map_err(err)?;
    let src2 = parse_reg(fields[4]).map_err(err)?;
    let mem_addr = if fields[5] == "-" {
        None
    } else {
        Some(u64::from_str_radix(fields[5], 16).map_err(|_| err("bad mem addr".into()))?)
    };
    let branch = match fields[6] {
        "-" => None,
        t @ ("t" | "n") => Some(BranchInfo {
            taken: t == "t",
            target: u64::from_str_radix(fields[7], 16)
                .map_err(|_| err("bad branch target".into()))?,
        }),
        other => return Err(err(format!("bad taken flag {other}"))),
    };
    Ok(Instruction {
        opcode,
        dest,
        src1,
        src2,
        mem_addr,
        branch,
        pc,
    })
}

/// Writes `count` instructions of a stream to `writer` in trace format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn record<I, W>(stream: I, count: usize, mut writer: W) -> std::io::Result<()>
where
    I: IntoIterator<Item = Instruction>,
    W: Write,
{
    for inst in stream.into_iter().take(count) {
        writeln!(writer, "{}", render_line(&inst))?;
    }
    Ok(())
}

/// An iterator replaying instructions from a trace reader.
///
/// Errors surface as panics with line numbers (trace files are build
/// artefacts; a malformed one is a bug, not user input).
#[derive(Debug)]
pub struct TraceReader<R> {
    lines: std::io::Lines<R>,
    line_no: usize,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered reader.
    #[must_use]
    pub fn new(reader: R) -> Self {
        Self {
            lines: reader.lines(),
            line_no: 0,
        }
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => panic!("trace read error at line {}: {e}", self.line_no + 1),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match parse_line(trimmed) {
                Ok(inst) => return Some(inst),
                Err(mut e) => {
                    e.line = self.line_no;
                    panic!("{e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGenerator;
    use crate::profiles;

    #[test]
    fn round_trip_all_instruction_kinds() {
        // A long window of every benchmark exercises every opcode shape.
        for name in ["176.gcc", "171.swim", "188.ammp"] {
            let p = profiles::by_name(name).unwrap();
            for inst in TraceGenerator::new(p, 5).take(2_000) {
                let line = render_line(&inst);
                let back = parse_line(&line).unwrap_or_else(|e| panic!("{name}: {e}: {line}"));
                assert_eq!(inst, back, "{name}: {line}");
            }
        }
    }

    #[test]
    fn record_then_replay_matches() {
        let p = profiles::by_name("164.gzip").unwrap();
        let original: Vec<_> = TraceGenerator::new(p.clone(), 3).take(500).collect();
        let mut buf = Vec::new();
        record(original.iter().copied(), 500, &mut buf).unwrap();
        let replayed: Vec<_> = TraceReader::new(std::io::Cursor::new(buf)).collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n120000|nop|-|-|-|-|-|-\n";
        let insts: Vec<_> = TraceReader::new(std::io::Cursor::new(text)).collect();
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].opcode, fo4depth_isa::Opcode::Nop);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("garbage").is_err());
        assert!(parse_line("120000|frob|-|-|-|-|-|-").is_err());
        assert!(parse_line("120000|nop|-|-|-|-|x|-").is_err());
        assert!(parse_line("120000|nop|r99|-|-|-|-|-").is_err());
        let e = parse_line("zz|nop|-|-|-|-|-|-").unwrap_err();
        assert!(e.to_string().contains("bad pc"));
    }

    #[test]
    fn replayed_trace_drives_the_simulator_identically() {
        use fo4depth_isa::Instruction;
        let p = profiles::by_name("300.twolf").unwrap();
        let original: Vec<Instruction> = TraceGenerator::new(p, 7).take(20_000).collect();
        let mut buf = Vec::new();
        record(original.iter().copied(), 20_000, &mut buf).unwrap();
        let replay: Vec<Instruction> = TraceReader::new(std::io::Cursor::new(buf)).collect();
        assert_eq!(original, replay);
    }
}
