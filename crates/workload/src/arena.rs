//! Materialized trace arenas: generate a benchmark's instruction stream
//! once, replay it everywhere.
//!
//! The depth-sweep grids run the *same* `(profile, seed)` trace at every
//! clock point — 15 times per benchmark in the headline sweep — and the
//! streaming [`TraceGenerator`] re-synthesizes it inline each run,
//! interleaving RNG, address, and branch-site work into the simulator's
//! per-cycle hot path. A [`TraceArena`] runs the generator exactly once
//! into a compact, pre-decoded structure-of-arrays buffer; a
//! [`TraceCursor`] replays it as plain slice reads. Replay is
//! *instruction-for-instruction identical* to streaming (a tested
//! invariant), so sharing an arena across sweep points, cores, and worker
//! threads changes wall time only.
//!
//! Storage is 21 bytes per instruction (opcode, flag bits, three packed
//! operand bytes, PC, and one address-or-target word), independent of the
//! 64-byte in-memory [`Instruction`] the cores consume — the cursor
//! re-expands on the fly.
//!
//! A cursor is not limited to the materialized prefix: the arena stores
//! the generator's end state, and a cursor that walks off the end clones
//! it and keeps streaming. Synthetic traces therefore stay infinite, and
//! an under-provisioned arena degrades to the old streaming cost instead
//! of a wrong answer.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use fo4depth_workload::{profiles, TraceArena, TraceGenerator};
//!
//! let p = profiles::by_name("181.mcf").unwrap();
//! let arena = Arc::new(TraceArena::generate(p.clone(), 1, 500));
//! let replayed: Vec<_> = arena.cursor().take(700).collect(); // past the end: still exact
//! let streamed: Vec<_> = TraceGenerator::new(p, 1).take(700).collect();
//! assert_eq!(replayed, streamed);
//! ```

use std::sync::Arc;

use fo4depth_isa::{ArchReg, BranchInfo, Instruction, Opcode};

use crate::generate::TraceGenerator;
use crate::profile::BenchProfile;

/// Flag bit: the instruction carries a data address in `aux`.
const HAS_MEM: u8 = 1 << 0;
/// Flag bit: the instruction carries oracle branch info (`aux` = target).
const HAS_BRANCH: u8 = 1 << 1;
/// Flag bit: the branch is taken (only meaningful with `HAS_BRANCH`).
const TAKEN: u8 = 1 << 2;

/// Packed operand byte for "no register".
const NO_REG: u8 = u8::MAX;

#[inline]
fn pack_reg(r: Option<ArchReg>) -> u8 {
    r.map_or(NO_REG, |r| r.flat_index() as u8)
}

#[inline]
fn unpack_reg(b: u8) -> Option<ArchReg> {
    if b == NO_REG {
        None
    } else {
        Some(ArchReg::from_flat_index(b as usize))
    }
}

/// A benchmark trace materialized once into structure-of-arrays columns.
///
/// Immutable after construction; share it across threads with [`Arc`] and
/// hand each simulation its own [`TraceCursor`].
#[derive(Debug, Clone)]
pub struct TraceArena {
    seed: u64,
    /// Opcode per instruction.
    ops: Vec<Opcode>,
    /// `HAS_MEM` / `HAS_BRANCH` / `TAKEN` bits per instruction.
    flags: Vec<u8>,
    /// Packed destination / source registers (flat index, `NO_REG` = none).
    dest: Vec<u8>,
    src1: Vec<u8>,
    src2: Vec<u8>,
    /// Program counter per instruction.
    pcs: Vec<u64>,
    /// Data address (`HAS_MEM`) or branch target (`HAS_BRANCH`); an
    /// instruction is never both.
    aux: Vec<u64>,
    /// Generator state after the last materialized instruction; cursors
    /// that run past the end clone it and keep streaming.
    tail: TraceGenerator,
    /// Cache-warming addresses for this workload (see
    /// [`TraceGenerator::prewarm_addresses`]), derived once from the same
    /// profile the materialized stream came from so the two cannot drift.
    prewarm: Vec<u64>,
}

impl TraceArena {
    /// Runs a fresh [`TraceGenerator`] for `(profile, seed)` through its
    /// first `len` instructions and materializes them.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchProfile::validate`].
    #[must_use]
    pub fn generate(profile: BenchProfile, seed: u64, len: usize) -> Self {
        let mut gen = TraceGenerator::new(profile, seed);
        let prewarm = gen.prewarm_addresses();
        let mut arena = Self {
            seed,
            ops: Vec::with_capacity(len),
            flags: Vec::with_capacity(len),
            dest: Vec::with_capacity(len),
            src1: Vec::with_capacity(len),
            src2: Vec::with_capacity(len),
            pcs: Vec::with_capacity(len),
            aux: Vec::with_capacity(len),
            tail: gen.clone(),
            prewarm,
        };
        for _ in 0..len {
            let inst = gen.next().expect("synthetic traces are infinite");
            arena.push(&inst);
        }
        arena.tail = gen;
        arena
    }

    fn push(&mut self, inst: &Instruction) {
        let mut flags = 0u8;
        let mut aux = 0u64;
        if let Some(addr) = inst.mem_addr {
            flags |= HAS_MEM;
            aux = addr;
        }
        if let Some(branch) = inst.branch {
            flags |= HAS_BRANCH;
            if branch.taken {
                flags |= TAKEN;
            }
            aux = branch.target;
        }
        self.ops.push(inst.opcode);
        self.flags.push(flags);
        self.dest.push(pack_reg(inst.dest));
        self.src1.push(pack_reg(inst.src1));
        self.src2.push(pack_reg(inst.src2));
        self.pcs.push(inst.pc);
        self.aux.push(aux);
    }

    /// Number of materialized instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was materialized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The profile the trace was generated from.
    #[must_use]
    pub fn profile(&self) -> &BenchProfile {
        self.tail.profile()
    }

    /// The seed the trace was generated with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Approximate resident size of the materialized columns, in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<Opcode>() + 4 + 16)
    }

    /// Addresses a simulator should touch before timing starts — the same
    /// list [`TraceGenerator::prewarm_addresses`] produces, computed once
    /// at materialization time from the same generator.
    #[must_use]
    pub fn prewarm_addresses(&self) -> &[u64] {
        &self.prewarm
    }

    /// Decodes instruction `i`, bit-identical to the `i`-th instruction
    /// the streaming generator yields.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> Instruction {
        let flags = self.flags[i];
        Instruction {
            opcode: self.ops[i],
            dest: unpack_reg(self.dest[i]),
            src1: unpack_reg(self.src1[i]),
            src2: unpack_reg(self.src2[i]),
            mem_addr: (flags & HAS_MEM != 0).then(|| self.aux[i]),
            branch: (flags & HAS_BRANCH != 0).then(|| BranchInfo {
                taken: flags & TAKEN != 0,
                target: self.aux[i],
            }),
            pc: self.pcs[i],
        }
    }

    /// A replay cursor starting at instruction 0.
    #[must_use]
    pub fn cursor(self: &Arc<Self>) -> TraceCursor {
        TraceCursor {
            arena: Arc::clone(self),
            idx: 0,
            overflow: None,
        }
    }
}

/// A cheap replay iterator over a shared [`TraceArena`].
///
/// Within the materialized prefix, `next` is a handful of slice reads; past
/// the end it transparently continues streaming from the arena's stored
/// generator state, so the sequence is identical to a fresh
/// [`TraceGenerator`] at every index.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    arena: Arc<TraceArena>,
    idx: usize,
    /// Streaming continuation, cloned from the arena tail on first use.
    overflow: Option<TraceGenerator>,
}

impl TraceCursor {
    /// Instructions yielded so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.idx
    }

    /// Whether the cursor has left the materialized prefix and is
    /// streaming from the tail generator.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.overflow.is_some()
    }
}

impl Iterator for TraceCursor {
    type Item = Instruction;

    #[inline]
    fn next(&mut self) -> Option<Instruction> {
        if self.idx < self.arena.len() {
            let inst = self.arena.get(self.idx);
            self.idx += 1;
            return Some(inst);
        }
        self.idx += 1;
        self.overflow
            .get_or_insert_with(|| self.arena.tail.clone())
            .next()
    }
}

/// The arena's materialized prefix decoded once into contiguous
/// [`Instruction`]s, for batched lane sets that replay the same stream
/// many times over.
///
/// [`TraceCursor`] unpacks the 21-B/inst columnar records on every `next`;
/// with N lanes in lockstep that work is repeated N times. `SharedTrace`
/// pays the decode once and hands every lane a [`SharedCursor`] that reads
/// the shared buffer — the same `Instruction` values in the same order, so
/// swapping cursor types is invisible to simulated outcomes. Past the
/// prefix a cursor falls back to the arena's streaming continuation,
/// keeping the "performance bound, not a correctness one" property of the
/// materialized length.
#[derive(Debug, Clone)]
pub struct SharedTrace {
    buf: Arc<[Instruction]>,
    /// Continuation positioned just past the decoded prefix; cloned by any
    /// cursor that outruns the buffer.
    rest: TraceCursor,
}

impl SharedTrace {
    /// Decodes the full materialized prefix of `arena`.
    #[must_use]
    pub fn decode(arena: &Arc<TraceArena>) -> Self {
        let mut cursor = arena.cursor();
        let buf: Arc<[Instruction]> = (&mut cursor).take(arena.len()).collect();
        Self { buf, rest: cursor }
    }

    /// A replay cursor starting at instruction 0.
    #[must_use]
    pub fn cursor(&self) -> SharedCursor {
        SharedCursor {
            buf: Arc::clone(&self.buf),
            idx: 0,
            rest: self.rest.clone(),
        }
    }
}

/// A replay iterator over a [`SharedTrace`]: one contiguous load per
/// instruction inside the decoded prefix, streaming past its end.
#[derive(Debug, Clone)]
pub struct SharedCursor {
    buf: Arc<[Instruction]>,
    idx: usize,
    rest: TraceCursor,
}

impl Iterator for SharedCursor {
    type Item = Instruction;

    #[inline]
    fn next(&mut self) -> Option<Instruction> {
        if let Some(&inst) = self.buf.get(self.idx) {
            self.idx += 1;
            return Some(inst);
        }
        self.rest.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn replay_matches_streaming_within_prefix() {
        for name in ["164.gzip", "171.swim", "179.art"] {
            let p = profiles::by_name(name).unwrap();
            let arena = Arc::new(TraceArena::generate(p.clone(), 9, 3_000));
            let streamed: Vec<_> = TraceGenerator::new(p, 9).take(3_000).collect();
            let replayed: Vec<_> = arena.cursor().take(3_000).collect();
            assert_eq!(streamed, replayed, "{name} diverged");
        }
    }

    #[test]
    fn replay_matches_streaming_past_the_end() {
        let p = profiles::by_name("181.mcf").unwrap();
        let arena = Arc::new(TraceArena::generate(p.clone(), 3, 400));
        let streamed: Vec<_> = TraceGenerator::new(p, 3).take(1_000).collect();
        let mut cursor = arena.cursor();
        let replayed: Vec<_> = cursor.by_ref().take(1_000).collect();
        assert_eq!(streamed, replayed);
        assert!(cursor.overflowed());
    }

    #[test]
    fn two_cursors_are_independent() {
        let p = profiles::by_name("164.gzip").unwrap();
        let arena = Arc::new(TraceArena::generate(p, 1, 200));
        let a: Vec<_> = arena.cursor().take(150).collect();
        let mut c1 = arena.cursor();
        let mut c2 = arena.cursor();
        for want in &a {
            assert_eq!(c1.next().as_ref(), Some(want));
            assert_eq!(c2.next().as_ref(), Some(want));
        }
    }

    #[test]
    fn prewarm_matches_generator() {
        let p = profiles::by_name("176.gcc").unwrap();
        let arena = TraceArena::generate(p.clone(), 1, 10);
        assert_eq!(
            arena.prewarm_addresses(),
            TraceGenerator::new(p, 1).prewarm_addresses().as_slice()
        );
    }

    #[test]
    fn get_decodes_every_field() {
        let p = profiles::by_name("181.mcf").unwrap();
        let arena = TraceArena::generate(p.clone(), 5, 2_000);
        let mut gen = TraceGenerator::new(p, 5);
        for i in 0..arena.len() {
            assert_eq!(arena.get(i), gen.next().unwrap(), "instruction {i}");
        }
    }

    #[test]
    fn metadata_is_preserved() {
        let p = profiles::by_name("171.swim").unwrap();
        let arena = TraceArena::generate(p.clone(), 7, 64);
        assert_eq!(arena.len(), 64);
        assert!(!arena.is_empty());
        assert_eq!(arena.seed(), 7);
        assert_eq!(arena.profile().name, p.name);
        assert!(arena.bytes() > 0);
    }
}
