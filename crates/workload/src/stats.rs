//! Trace measurement: verify that generated streams exhibit the statistics
//! their profile promises.

use std::collections::HashMap;

use fo4depth_isa::{Instruction, OpClass};
use fo4depth_util::Histogram;

/// Aggregate statistics over a generated instruction stream.
///
/// # Examples
///
/// ```
/// use fo4depth_workload::{profiles, TraceGenerator, TraceStats};
/// let p = profiles::by_name("164.gzip").unwrap();
/// let stats = TraceStats::measure(TraceGenerator::new(p.clone(), 1).take(10_000));
/// assert!(stats.fraction(fo4depth_isa::OpClass::Load) > 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct TraceStats {
    counts: HashMap<OpClass, u64>,
    total: u64,
    taken: u64,
    branches: u64,
    dep_distance: Histogram,
    distinct_branch_pcs: usize,
}

impl TraceStats {
    /// Measures a stream of instructions.
    #[must_use]
    pub fn measure<I: IntoIterator<Item = Instruction>>(stream: I) -> Self {
        let mut counts = HashMap::new();
        let mut total = 0u64;
        let mut taken = 0u64;
        let mut branches = 0u64;
        let mut dep = Histogram::new(64);
        let mut writers: Vec<(fo4depth_isa::ArchReg, u64)> = Vec::new();
        let mut branch_pcs = std::collections::HashSet::new();

        for (idx, inst) in stream.into_iter().enumerate() {
            let idx = idx as u64;
            total += 1;
            *counts.entry(inst.op_class()).or_insert(0) += 1;
            if inst.op_class() == OpClass::Branch {
                branches += 1;
                if inst.branch.map(|b| b.taken).unwrap_or(false) {
                    taken += 1;
                }
                branch_pcs.insert(inst.pc);
            }
            for src in inst.sources().into_iter().flatten() {
                if let Some(&(_, widx)) = writers.iter().rev().find(|(r, _)| *r == src) {
                    dep.record(idx - widx);
                }
            }
            if let Some(d) = inst.dest {
                writers.push((d, idx));
                if writers.len() > 128 {
                    writers.remove(0);
                }
            }
        }
        Self {
            counts,
            total,
            taken,
            branches,
            dep_distance: dep,
            distinct_branch_pcs: branch_pcs.len(),
        }
    }

    /// Total instructions measured.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of the stream in the given class.
    #[must_use]
    pub fn fraction(&self, class: OpClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&class).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        self.taken as f64 / self.branches as f64
    }

    /// Mean realized producer→consumer distance (in instructions), counting
    /// only sources that resolved to a tracked recent producer.
    #[must_use]
    pub fn mean_dep_distance(&self) -> f64 {
        self.dep_distance.mean_floor()
    }

    /// Number of distinct static branch sites observed.
    #[must_use]
    pub fn distinct_branch_sites(&self) -> usize {
        self.distinct_branch_pcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGenerator;
    use crate::profiles;

    fn stats_for(name: &str, n: usize) -> TraceStats {
        let p = profiles::by_name(name).unwrap();
        TraceStats::measure(TraceGenerator::new(p, 11).take(n))
    }

    #[test]
    fn mix_fractions_near_profile() {
        let s = stats_for("164.gzip", 40_000);
        // gzip mix: 26% loads, 16% branches (normalized weights sum to 1.0).
        assert!((s.fraction(OpClass::Load) - 0.26).abs() < 0.02);
        assert!((s.fraction(OpClass::Branch) - 0.16).abs() < 0.02);
        assert!((s.fraction(OpClass::Store) - 0.11).abs() < 0.02);
    }

    #[test]
    fn vector_code_is_branch_light() {
        let s = stats_for("171.swim", 40_000);
        assert!(s.fraction(OpClass::Branch) < 0.04);
        assert!(s.fraction(OpClass::FpAdd) > 0.15);
    }

    #[test]
    fn integer_dependencies_shorter_than_vector() {
        let int = stats_for("164.gzip", 20_000).mean_dep_distance();
        let vec = stats_for("171.swim", 20_000).mean_dep_distance();
        assert!(int < vec, "integer distance {int} should be < vector {vec}");
    }

    #[test]
    fn branch_sites_bounded_by_profile() {
        let p = profiles::by_name("164.gzip").unwrap();
        let s = stats_for("164.gzip", 30_000);
        assert!(s.distinct_branch_sites() <= p.branches.static_sites);
        assert!(s.distinct_branch_sites() > 32);
    }

    #[test]
    fn taken_rate_is_plausible() {
        // Loop-dominated codes are mostly taken; integer codes mixed.
        let int = stats_for("176.gcc", 30_000).taken_rate();
        assert!((0.3..0.9).contains(&int), "gcc taken rate {int}");
        let vec = stats_for("171.swim", 30_000).taken_rate();
        assert!(vec > 0.5, "swim taken rate {vec}");
    }

    #[test]
    fn empty_stream_is_all_zeroes() {
        let s = TraceStats::measure(std::iter::empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.fraction(OpClass::Load), 0.0);
        assert_eq!(s.taken_rate(), 0.0);
    }
}
