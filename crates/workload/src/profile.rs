//! Benchmark profiles: the statistical parameters of a synthetic workload.

use serde::{Deserialize, Serialize};

/// The paper's three-way benchmark classification (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchClass {
    /// SPECint 2000 benchmarks.
    Integer,
    /// FP benchmarks with strong vector-like behaviour (swim, mgrid, applu,
    /// equake): ample ILP, long dependency distances, streaming memory.
    VectorFp,
    /// The remaining FP benchmarks (mesa, galgel, art, ammp, lucas).
    NonVectorFp,
}

impl BenchClass {
    /// Human-readable label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BenchClass::Integer => "Integer",
            BenchClass::VectorFp => "Vector FP",
            BenchClass::NonVectorFp => "Non-vector FP",
        }
    }
}

/// Instruction-mix weights. They need not sum to one; the generator
/// normalizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Integer ALU (including address arithmetic not folded into memory
    /// ops).
    pub int_alu: f64,
    /// Integer multiply.
    pub int_mult: f64,
    /// FP add/sub/convert.
    pub fp_add: f64,
    /// FP multiply.
    pub fp_mult: f64,
    /// FP divide.
    pub fp_div: f64,
    /// FP square root.
    pub fp_sqrt: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
    /// Unconditional jumps/calls/returns.
    pub jump: f64,
}

impl OpMix {
    /// A typical SPECint mix.
    #[must_use]
    pub fn integer() -> Self {
        Self {
            int_alu: 0.42,
            int_mult: 0.01,
            fp_add: 0.0,
            fp_mult: 0.0,
            fp_div: 0.0,
            fp_sqrt: 0.0,
            load: 0.26,
            store: 0.11,
            branch: 0.16,
            jump: 0.04,
        }
    }

    /// A typical vector-FP mix (loop-dominated, branch-light).
    #[must_use]
    pub fn vector_fp() -> Self {
        Self {
            int_alu: 0.22,
            int_mult: 0.0,
            fp_add: 0.22,
            fp_mult: 0.18,
            fp_div: 0.005,
            fp_sqrt: 0.0,
            load: 0.26,
            store: 0.09,
            branch: 0.02,
            jump: 0.005,
        }
    }

    /// A typical non-vector FP mix.
    #[must_use]
    pub fn non_vector_fp() -> Self {
        Self {
            int_alu: 0.28,
            int_mult: 0.005,
            fp_add: 0.16,
            fp_mult: 0.12,
            fp_div: 0.015,
            fp_sqrt: 0.003,
            load: 0.25,
            store: 0.09,
            branch: 0.07,
            jump: 0.01,
        }
    }

    /// The weights as an array ordered like
    /// [`TraceGenerator`](crate::TraceGenerator)'s internal class table.
    #[must_use]
    pub fn weights(&self) -> [f64; 10] {
        [
            self.int_alu,
            self.int_mult,
            self.fp_add,
            self.fp_mult,
            self.fp_div,
            self.fp_sqrt,
            self.load,
            self.store,
            self.branch,
            self.jump,
        ]
    }
}

/// Branch-behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchModel {
    /// Number of static branch sites; dynamic branches pick a site from a
    /// Zipf distribution so a few hot branches dominate (as in real codes).
    pub static_sites: usize,
    /// Zipf skew over sites.
    pub site_skew: f64,
    /// Fraction of sites that are strongly biased (predictable); their
    /// taken-probability is drawn near 0 or 1. The rest are weakly biased
    /// (hard to predict). Achievable prediction accuracy rises with this.
    pub biased_fraction: f64,
    /// Taken-probability magnitude for biased sites (e.g. 0.97 ⇒ sites are
    /// taken 97 % or 3 % of the time).
    pub bias_strength: f64,
    /// Fraction of sites whose outcome *correlates with the previous
    /// dynamic branch* (if/else ladders testing related conditions). These
    /// are what global-history predictors exploit; without them, synthetic
    /// streams unrealistically favour per-PC counters.
    pub correlated_fraction: f64,
    /// Mean number of instructions per basic block (inverse branch density
    /// used only for PC layout, not for the mix).
    pub mean_block: f64,
}

impl BranchModel {
    /// Branchy, moderately predictable integer behaviour.
    #[must_use]
    pub fn integer() -> Self {
        Self {
            static_sites: 512,
            site_skew: 0.9,
            biased_fraction: 0.85,
            bias_strength: 0.97,
            correlated_fraction: 0.06,
            mean_block: 6.0,
        }
    }

    /// Loop-dominated, highly predictable FP behaviour.
    #[must_use]
    pub fn vector_fp() -> Self {
        Self {
            static_sites: 64,
            site_skew: 1.2,
            biased_fraction: 0.99,
            bias_strength: 0.995,
            correlated_fraction: 0.05,
            mean_block: 40.0,
        }
    }
}

/// Memory-reference parameters.
///
/// Addresses are generated with *explicit reuse distances* rather than
/// literal program addresses, so the resulting cache miss rates are
/// horizon-independent and directly calibrated: a reference draws from one
/// of three pools —
///
/// * a **hot pool** of `hot_lines` Zipf-weighted lines that stays resident
///   in the L1 (stack, globals, hot table entries);
/// * an **L2 pool** sized well above the L1 but far below the L2, touched
///   uniformly, so its references miss L1 and hit L2 (blocked array
///   passes, medium-distance reuse);
/// * **fresh memory**, an ever-advancing pointer that never re-touches a
///   line (cold heap walks, giant-stream compulsory misses).
///
/// The target per-reference rates are published SPEC CPU2000
/// characterizations (e.g. gzip ≈ 3 % DL1 misses with an L2-resident set,
/// mcf ≈ 25 % with most misses going to memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Nominal working-set size in bytes (informational; drives the paper's
    /// narrative classification, not the generated reuse pattern).
    pub working_set: u64,
    /// Fraction of references drawn from the L2-resident pool (≈ the DL1
    /// miss rate contributed by medium-distance reuse).
    pub l2_resident: f64,
    /// Fraction of references that touch fresh memory (≈ the per-reference
    /// main-memory rate).
    pub memory: f64,
    /// Number of distinct hot (L1-resident) cache lines.
    pub hot_lines: usize,
}

impl MemoryModel {
    /// Cache-friendly integer behaviour (hot stack, small L2 traffic).
    #[must_use]
    pub fn integer_small() -> Self {
        Self {
            working_set: 256 * 1024,
            l2_resident: 0.03,
            memory: 0.003,
            hot_lines: 256,
        }
    }

    /// Streaming vector behaviour: heavy L2 traffic from blocked array
    /// passes plus a steady compulsory-miss stream.
    #[must_use]
    pub fn vector() -> Self {
        Self {
            working_set: 32 * 1024 * 1024,
            l2_resident: 0.15,
            memory: 0.02,
            hot_lines: 256,
        }
    }
}

/// The complete statistical description of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// SPEC-style name, e.g. `"164.gzip"`.
    pub name: String,
    /// The paper's classification of this benchmark.
    pub class: BenchClass,
    /// Instruction mix.
    pub mix: OpMix,
    /// Mean register dependency distance (geometric). Short distances make
    /// dependency chains that serialize issue; long distances expose ILP.
    pub mean_dep_distance: f64,
    /// Probability that a source operand references a long-lived value
    /// (loop invariant / global) instead of a recent producer — these never
    /// stall a wide core.
    pub far_source_fraction: f64,
    /// Probability that a load's base address comes from a *recent load*
    /// (pointer chasing): chains of dependent loads serialize on the
    /// load-use loop, the behaviour that makes mcf-class codes so
    /// latency-bound.
    pub load_chain_fraction: f64,
    /// Branch behaviour.
    pub branches: BranchModel,
    /// Memory behaviour.
    pub memory: MemoryModel,
}

impl BenchProfile {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.mean_dep_distance < 1.0 {
            return Err(format!("{}: mean_dep_distance must be >= 1", self.name));
        }
        if !(0.0..=1.0).contains(&self.far_source_fraction) {
            return Err(format!("{}: far_source_fraction out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.load_chain_fraction) {
            return Err(format!("{}: load_chain_fraction out of range", self.name));
        }
        if self.memory.l2_resident + self.memory.memory > 1.0 {
            return Err(format!("{}: miss fractions exceed 1", self.name));
        }
        for (label, v) in [
            ("biased_fraction", self.branches.biased_fraction),
            ("bias_strength", self.branches.bias_strength),
            ("correlated_fraction", self.branches.correlated_fraction),
            ("l2_resident", self.memory.l2_resident),
            ("memory", self.memory.memory),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {label} out of range", self.name));
            }
        }
        if self.branches.static_sites == 0 || self.memory.hot_lines == 0 {
            return Err(format!("{}: zero-sized site/hot-line pool", self.name));
        }
        if self.memory.working_set < 4096 {
            return Err(format!("{}: working set too small", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchProfile {
        BenchProfile {
            name: "test".into(),
            class: BenchClass::Integer,
            mix: OpMix::integer(),
            mean_dep_distance: 3.0,
            far_source_fraction: 0.3,
            load_chain_fraction: 0.2,
            branches: BranchModel::integer(),
            memory: MemoryModel::integer_small(),
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut p = sample();
        p.mean_dep_distance = 0.5;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.far_source_fraction = 1.5;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.memory.working_set = 16;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.branches.static_sites = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_labels() {
        assert_eq!(BenchClass::Integer.label(), "Integer");
        assert_eq!(BenchClass::VectorFp.label(), "Vector FP");
        assert_eq!(BenchClass::NonVectorFp.label(), "Non-vector FP");
    }

    #[test]
    fn mix_weights_order() {
        let w = OpMix::integer().weights();
        assert_eq!(w[0], 0.42);
        assert_eq!(w[6], 0.26);
        assert_eq!(w[8], 0.16);
    }
}
