//! The §5 segmented instruction window, end to end.
//!
//! Compares three issue-window organizations on the Alpha-21264-class core:
//!
//! 1. a conventional single-cycle 32-entry window,
//! 2. the wakeup-segmented window at several depths (Figure 11), and
//! 3. the Figure 12 design: 4 stages × 8 entries with pre-selection quotas
//!    5/2/1 and a final select fan-in of 16.
//!
//! ```text
//! cargo run --release --example segmented_window
//! ```

use fo4depth::study::segmented::{select_eval, window_depth_sweep};
use fo4depth::study::sim::SimParams;
use fo4depth::workload::profiles;

fn main() {
    let params = SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    };
    let profs = profiles::all();

    println!("Figure 11: IPC vs wakeup pipeline depth (32-entry window, ideal select)\n");
    let curves = window_depth_sweep(&profs, &params, &[1, 2, 3, 4, 6, 8, 10]);
    print!("{:14}", "stages");
    for (s, _) in &curves[0].relative_ipc {
        print!(" {s:>6}");
    }
    println!();
    for c in &curves {
        print!("{:14}", c.class.label());
        for (_, rel) in &c.relative_ipc {
            print!(" {rel:>6.3}");
        }
        println!();
    }
    println!("\nPaper: flat through 4 stages; -11% integer / -5% FP at 10 stages.\n");

    println!("§5.2: pre-selection (Figure 12: 4 stages, quotas 5/2/1, fan-in 16)\n");
    for e in select_eval(&profs, &params) {
        println!(
            "{:14} conventional IPC {:.3}  segmented IPC {:.3}  loss {:+.1}%",
            e.class.label(),
            e.conventional_ipc,
            e.segmented_ipc,
            e.loss() * 100.0
        );
    }
    println!("\nPaper: -4% integer, -1% FP.");
}
