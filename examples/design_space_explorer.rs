//! Structure-capacity exploration (§4.5 / Figure 7): at each clock, is the
//! Alpha's 64 KB / 2 MB / 32-entry configuration still the right trade-off?
//!
//! ```text
//! cargo run --release --example design_space_explorer
//! ```

use fo4depth::cacti::{access_time, cam_access_time, presets};
use fo4depth::study::capacity::{capacity_study_with, optimize_at};
use fo4depth::study::sim::SimParams;
use fo4depth::workload::profiles;
use fo4depth_fo4::Fo4;

fn main() {
    // --- what the cacti model says about the raw trade-off -------------
    println!("Access time vs capacity (fo4depth-cacti):\n");
    println!("  L1 D-cache (2-way, 64 B lines):");
    for kb in [16u64, 32, 64, 128] {
        let t = access_time(&presets::data_cache(kb * 1024)).total;
        println!("    {kb:>4} KB: {:>6.1} FO4", t.get());
    }
    println!("  Issue window (4-wide broadcast):");
    for e in [16u32, 32, 64] {
        let t = cam_access_time(&presets::issue_window(e)).total;
        println!("    {e:>4} entries: {:>6.1} FO4", t.get());
    }

    // --- per-clock optimization ----------------------------------------
    let params = SimParams {
        warmup: 6_000,
        measure: 25_000,
        seed: 1,
    };
    // A representative benchmark subset keeps this example fast.
    let profs: Vec<_> = ["164.gzip", "181.mcf", "300.twolf", "171.swim", "179.art"]
        .iter()
        .map(|n| profiles::by_name(n).expect("known benchmark"))
        .collect();

    println!("\nPer-clock capacity choices (coordinate search, §4.5 method):\n");
    println!("  t_useful   DL1      L2       window  predictor");
    for t in [2.0, 4.0, 6.0, 9.0, 12.0] {
        let c = optimize_at(Fo4::new(t), Fo4::new(1.8), &profs, &params);
        println!(
            "  {t:>7.1}   {:>4} KB  {:>5} KB  {:>5}   {:>6}",
            c.dcache / 1024,
            c.l2 / 1024,
            c.window,
            c.predictor
        );
    }

    println!("\nFigure 7: base vs capacity-optimized BIPS:\n");
    let points: Vec<Fo4> = [4.0, 6.0, 9.0].into_iter().map(Fo4::new).collect();
    let study = capacity_study_with(&profs, &params, &points);
    println!("  t_useful   base     optimized");
    let base = study.base.series(None);
    let opt = study.optimized.series(None);
    for ((t, b), (_, o)) in base.iter().zip(&opt) {
        println!("  {t:>7.1}   {b:>6.3}   {o:>6.3}");
    }
    println!(
        "\n  mean gain from optimization: {:+.1}% (paper: ~+14%)",
        study.mean_gain() * 100.0
    );
}
