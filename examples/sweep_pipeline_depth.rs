//! The full §4 methodology walk-through on a single benchmark: how a clock
//! choice turns into structure latencies, a core configuration, and
//! performance — including the in-order vs out-of-order comparison and the
//! CRAY-1S memory experiment.
//!
//! ```text
//! cargo run --release --example sweep_pipeline_depth [benchmark]
//! ```

use std::sync::Arc;

use fo4depth::study::cray::cray_memory_sweep_with;
use fo4depth::study::latency::{table3, StructureSet};
use fo4depth::study::render;
use fo4depth::study::scaler::ScaledMachine;
use fo4depth::study::sim::{run_inorder, run_ooo, SimParams};
use fo4depth::workload::{profiles, TraceArena};
use fo4depth_fo4::Fo4;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "164.gzip".into());
    let Some(profile) = profiles::by_name(&name) else {
        eprintln!("unknown benchmark {name}; known:");
        for p in profiles::all() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };
    let params = SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    };
    let structures = StructureSet::alpha_21264();

    println!("Table 3 (this build's structure latencies):\n");
    println!("{}", render::table3(&table3(&structures)));

    println!("{name}: per-clock machine and performance\n");
    println!(
        "  {:>8} {:>7} {:>5} {:>5} {:>5} {:>7} {:>7} {:>7} {:>7}",
        "t_useful", "GHz", "DL1", "wake", "FE", "inord", "o-o-o", "inBIPS", "oooBIPS"
    );
    let arena = Arc::new(TraceArena::generate(
        profile.clone(),
        params.seed,
        params.trace_len(),
    ));
    for t in [2.0, 4.0, 6.0, 8.0, 12.0, 16.0] {
        let m = ScaledMachine::at(&structures, Fo4::new(t), Fo4::new(1.8));
        let ino = run_inorder(&m.config, &arena, &params);
        let ooo = run_ooo(&m.config, &arena, &params);
        println!(
            "  {:>8.1} {:>7.2} {:>5} {:>5} {:>5} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            t,
            1000.0 / m.period_ps(),
            m.latencies.dcache,
            m.latencies.issue_window,
            m.config.depths.front_end(),
            ino.result.ipc(),
            ooo.result.ipc(),
            ino.result.bips(m.period_ps()),
            ooo.result.bips(m.period_ps()),
        );
    }

    println!("\n§4.2: the same benchmark against CRAY-1S-style flat memory:\n");
    let points: Vec<Fo4> = [4.0, 6.0, 8.0, 11.0, 14.0]
        .into_iter()
        .map(Fo4::new)
        .collect();
    let sweep = cray_memory_sweep_with(std::slice::from_ref(&profile), &params, &points);
    for p in &sweep.points {
        let bips = p.outcomes[0].result.bips(p.period_ps);
        println!("  t_useful {:>4.1}: {bips:.3} BIPS", p.t_useful);
    }
    println!("\nPaper: with a flat uncached memory the optimum moves from 6 to ~11 FO4.");
}
