//! Beyond the paper's tables: the §6 scheduler comparison, the §7
//! wire-delay future work, and ablations of the study's modelling choices.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use fo4depth::study::ablation::{
    cluster_ablation, memory_convention_ablation, mshr_ablation, predictor_ablation,
    scheduler_comparison,
};
use fo4depth::study::latency::StructureSet;
use fo4depth::study::power::{optimum_by, power_sweep, EnergyModel};
use fo4depth::study::projection::{pipelining_headroom, project, ProjectionInputs};
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{depth_sweep_with, CoreKind};
use fo4depth::study::wires::wire_study;
use fo4depth::workload::{profiles, BenchClass};
use fo4depth_fo4::Fo4;

fn main() {
    let params = SimParams {
        warmup: 8_000,
        measure: 30_000,
        seed: 1,
    };
    let int_profiles = profiles::integer();
    let subset: Vec<_> = ["164.gzip", "181.mcf", "197.parser", "171.swim"]
        .iter()
        .map(|n| profiles::by_name(n).expect("known"))
        .collect();

    println!("== §6: pipelined-scheduler designs (Alpha configuration) ==\n");
    for r in scheduler_comparison(&int_profiles, &params) {
        println!(
            "  {:22} IPC {:.3}  ({:+.1}% vs ideal)",
            r.design.label(),
            r.ipc,
            (r.relative - 1.0) * 100.0
        );
    }

    println!("\n== §7: wire-delay study (front-end transport budget) ==\n");
    let points: Vec<Fo4> = [3.0, 4.0, 6.0, 9.0, 12.0]
        .into_iter()
        .map(Fo4::new)
        .collect();
    for c in wire_study(&subset, &params, &points, &[0.0, 10.0, 20.0, 40.0]) {
        let (opt, bips) = c.sweep.class_optimum(BenchClass::Integer);
        println!(
            "  {:>4.0} mm of global wire: integer optimum {opt:>4.1} FO4 ({bips:.3} BIPS)",
            c.transport_mm
        );
    }

    println!("\n== ablation: DRAM scaling convention ==\n");
    let ab = memory_convention_ablation(&subset, &params, &points);
    let (cc, _) = ab.constant_cycles.class_optimum(BenchClass::Integer);
    let (at, _) = ab.absolute_time.class_optimum(BenchClass::Integer);
    println!("  memory constant in cycles (study convention): optimum {cc} FO4");
    println!("  memory constant in absolute time:             optimum {at} FO4");
    println!("  (the load-bearing modelling choice discussed in DESIGN.md §4)");

    println!("\n== ablation: miss-level parallelism (MSHRs) ==\n");
    for p in mshr_ablation(&subset, &params, &[1, 2, 4, 8, 16, 0]) {
        let label = if p.mshr_limit == 0 {
            "unbounded".to_string()
        } else {
            format!("{:>2} MSHRs", p.mshr_limit)
        };
        println!("  {label:>10}: IPC {:.3}", p.ipc);
    }

    println!("\n== ablation: branch predictor designs ==\n");
    for p in predictor_ablation(&int_profiles, &params) {
        println!(
            "  {:22} IPC {:.3}  mispredict {:.1}%",
            p.label,
            p.ipc,
            p.mispredict_rate * 100.0
        );
    }

    println!("\n== ablation: 21264-style clustered bypass ==\n");
    for p in cluster_ablation(&subset, &params, &[0, 1, 2]) {
        println!("  cross-cluster +{} cycle: IPC {:.3}", p.penalty, p.ipc);
    }

    println!("\n== extension: power-aware pipeline depth ==\n");
    let pw_points: Vec<Fo4> = [2.0, 4.0, 6.0, 9.0, 12.0, 16.0]
        .into_iter()
        .map(Fo4::new)
        .collect();
    let pw = power_sweep(&subset, &params, &pw_points, &EnergyModel::alpha_100nm());
    println!("  t_useful   BIPS    watts   nJ/instr  BIPS/W");
    for p in &pw {
        println!(
            "  {:>8.1} {:>6.2} {:>8.2} {:>9.2} {:>7.2}",
            p.t_useful, p.bips, p.watts, p.nj_per_instruction, p.bips_per_watt
        );
    }
    println!(
        "  optima: BIPS {} | BIPS/W {} | BIPS^3/W {} FO4 — efficiency prefers shallower pipes",
        optimum_by(&pw, |p| p.bips),
        optimum_by(&pw, |p| p.bips_per_watt),
        optimum_by(&pw, |p| p.bips3_per_watt)
    );

    println!("\n== §7 projection: where must performance come from? ==\n");
    let sweep = depth_sweep_with(
        CoreKind::OutOfOrder,
        &int_profiles,
        &params,
        &StructureSet::alpha_21264(),
        Fo4::new(1.8),
        &pw_points,
    );
    let headroom = pipelining_headroom(&sweep, BenchClass::Integer);
    let proj = project(&ProjectionInputs {
        pipelining_headroom: headroom,
        ..ProjectionInputs::isca2002()
    });
    println!("  measured pipelining headroom: {headroom:.2}x (paper: at most ~2x)");
    println!(
        "  to sustain 55%/yr: concurrency must grow {:.0}%/yr to {:.0} sustained IPC in 15 years",
        (proj.annual_ipc_growth - 1.0) * 100.0,
        proj.required_ipc
    );
    println!("  (paper: 33%/yr, ~50 IPC)");
}
