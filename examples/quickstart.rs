//! Quickstart: find the optimal logic depth per pipeline stage.
//!
//! Runs a reduced version of the paper's headline experiment (Figure 5):
//! sweep the useful logic per stage of an Alpha-21264-class out-of-order
//! core from 2 to 16 FO4 and report where each benchmark class peaks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fo4depth::study::render;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{depth_sweep, CoreKind};
use fo4depth::workload::{profiles, BenchClass};

fn main() {
    // Moderate instruction counts so this finishes in about a minute; the
    // bench harness (`cargo run -p fo4depth-bench --bin tables`) uses
    // longer runs.
    let params = SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    };

    println!(
        "Sweeping t_useful = 2..16 FO4 over {} benchmarks...\n",
        profiles::all().len()
    );
    let sweep = depth_sweep(CoreKind::OutOfOrder, &profiles::all(), &params);

    println!("{}", render::sweep_table(&sweep));

    for class in [
        BenchClass::Integer,
        BenchClass::VectorFp,
        BenchClass::NonVectorFp,
    ] {
        let (opt, bips) = sweep.class_optimum(class);
        println!(
            "{:14} optimum: {opt:>4.1} FO4 useful logic per stage ({bips:.2} BIPS)",
            class.label()
        );
    }
    println!();
    println!(
        "{}",
        render::ascii_plot(
            "Integer BIPS vs useful logic per stage (FO4)",
            &sweep.series(Some(BenchClass::Integer)),
            10,
        )
    );
    println!("Paper (ISCA 2002): integer 6 FO4, vector FP 4 FO4, non-vector FP 5 FO4.");
}
