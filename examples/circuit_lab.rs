//! The transistor-level measurements behind the study (Table 1 and
//! Appendix A), reproduced with the built-in transient circuit simulator.
//!
//! ```text
//! cargo run --release --example circuit_lab
//! ```

use fo4depth::circuit::{ecl, fo4meas, latch, DeviceParams};
use fo4depth::fo4::TechNode;

fn main() {
    let params = DeviceParams::at_100nm();

    // --- the FO4 delay itself -----------------------------------------
    let fo4 = fo4meas::measure_fo4(&params);
    println!("FO4 inverter delay at 100 nm:");
    println!(
        "  rise {:.1} ps, fall {:.1} ps, mean {:.1} ps (rule of thumb: {:.0} ps)\n",
        fo4.rise_ps,
        fo4.fall_ps,
        fo4.picoseconds(),
        TechNode::NM_100.fo4_picoseconds()
    );

    // --- Table 1: pulse-latch overhead ---------------------------------
    println!("Pulse-latch D->Q sweep (Figure 3 test circuit):");
    let m = latch::measure_latch_overhead(&params);
    println!("  setup(ps)  D->Q(ps)");
    for p in m.points.iter().step_by(5) {
        match p.dq_ps {
            Some(dq) => println!("  {:>8.1}  {:>8.1}", p.setup_ps, dq),
            None => println!("  {:>8.1}   capture FAILED", p.setup_ps),
        }
    }
    println!(
        "  latch overhead = {:.1} ps = {:.2} FO4 (paper Table 1: 1.0 FO4)\n",
        m.overhead_ps,
        m.overhead_ps / fo4.picoseconds()
    );

    // --- pulse latch vs master-slave flip-flop (§2 design choice) ------
    let ff = fo4depth::circuit::flipflop::measure_flipflop(&params);
    println!("Master-slave flip-flop (for comparison):");
    println!(
        "  min D->Q = {:.1} ps = {:.2} FO4 vs pulse latch {:.2} FO4 — the §2 rationale",
        ff.overhead_ps,
        ff.overhead_ps / fo4.picoseconds(),
        m.overhead_ps / fo4.picoseconds()
    );
    println!(
        "  energy per captured cycle: {:.1} fJ (incl. clock buffers)\n",
        ff.energy_per_cycle_fj
    );

    // --- Appendix A: the CRAY-1S ECL gate ------------------------------
    let e = ecl::measure_ecl_gate(&params);
    println!("Appendix A (NAND4 driving NAND5, Figure 13):");
    println!(
        "  gate pair = {:.1} ps = {:.2} FO4 (paper: 1.36 FO4)",
        e.gate_pair_ps,
        e.gate_in_fo4()
    );
    println!(
        "  Kunkel-Smith scalar optimum (8 gates): {:.1} FO4 (paper: 10.9)",
        e.cray_scalar_stage_fo4()
    );
    println!(
        "  Kunkel-Smith vector optimum (4 gates): {:.1} FO4 (paper: 5.4)",
        e.cray_vector_stage_fo4()
    );

    // --- ring oscillator: internal consistency check --------------------
    let ring = fo4depth::circuit::ringosc::measure_ring(&params, 9);
    println!("9-stage ring oscillator:");
    println!(
        "  period {:.1} ps -> FO1 stage delay {:.2} ps = {:.2} of an FO4\n",
        ring.period_ps,
        ring.stage_delay_ps,
        ring.stage_delay_ps / fo4.picoseconds()
    );

    // --- technology independence ---------------------------------------
    println!("\nFO4 scaling across drawn gate lengths:");
    for nm in [180.0, 130.0, 100.0, 70.0] {
        let scaled = params.scaled_to(nm / 1000.0);
        let f = fo4meas::measure_fo4(&scaled).picoseconds();
        println!(
            "  {nm:>4.0} nm: {f:>6.1} ps  (rule: {:>5.1} ps)",
            TechNode::from_nm(nm).fo4_picoseconds()
        );
    }
}
