//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real proc-macro
//! crate cannot be fetched. This repo only ever *annotates* types with
//! `#[derive(Serialize, Deserialize)]` (plus `#[serde(...)]` helpers) and
//! never calls a serializer — machine-readable output goes through
//! `fo4depth_util::json` instead. The derives therefore expand to nothing;
//! swapping the real serde back in requires only a Cargo.toml change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]`, emitting no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]`, emitting no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
