//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so existing `use serde::{Deserialize, Serialize}`
//! imports and `#[derive(...)]` annotations compile unchanged without
//! registry access. No serialization machinery is provided; the repo's
//! machine-readable output uses `fo4depth_util::json`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
