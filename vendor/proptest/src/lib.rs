//! Offline miniature re-implementation of the `proptest` API surface this
//! repository uses: `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert*!`, `prop_assume!`, range/tuple/`Just`/`any` strategies,
//! `collection::vec`, and `option::of`.
//!
//! Generation is deterministic: every test function derives its RNG seed
//! from its own name, so failures reproduce exactly on re-run. There is no
//! shrinking — failing cases report the case index and assertion message.

use std::marker::PhantomData;
use std::ops::Range;

// ---- deterministic RNG -------------------------------------------------

/// SplitMix64 generator; seeded per test from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, distinct seed per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- outcomes ----------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-block configuration (only `cases` is modelled).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

// ---- strategy ----------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for heterogeneous collections (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// A closure-backed strategy (`prop_compose!` expansion).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(hi > lo, "empty range");
                (lo + rng.below(hi - lo)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = i128::from(self.start);
                let hi = i128::from(self.end);
                assert!(hi > lo, "empty range");
                let span = (hi - lo) as u64;
                lo.wrapping_add(i128::from(rng.below(span))) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full domain of `T`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::collection` — sized containers.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// An `Option` strategy (`None` one time in four).
    pub struct OptionStrategy<S>(S);

    /// `Some(value)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Just, ProptestConfig, Strategy,
    };
}

// ---- macros ------------------------------------------------------------

/// Defines property-test functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(64).max(1024),
                    "too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("case {} of {}: {}", accepted, stringify!($name), msg)
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Defines a named composite strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:tt)*)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::boxed($strat)),+])
    };
}

/// Asserts within a property body, failing the case rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!(),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{a:?} != {b:?} ({}:{})",
                file!(),
                line!(),
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{a:?} == {b:?} ({}:{})",
                file!(),
                line!(),
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
