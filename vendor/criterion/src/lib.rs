//! Offline miniature stand-in for `criterion`.
//!
//! The build environment has no registry access, so the real harness cannot
//! be fetched. This crate keeps `cargo bench` working: each registered
//! benchmark body runs a small fixed number of iterations and the mean
//! wall-clock time is printed. There is no statistics engine, no warm-up
//! calibration, and no report output.

use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark (the stand-in ignores `sample_size`).
const ITERATIONS: u32 = 3;

/// Throughput annotation (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepts (and ignores) a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepts (and ignores) a throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Times `f` and prints the mean per-iteration wall clock.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { nanos: 0, runs: 0 };
        for _ in 0..ITERATIONS {
            f(&mut b);
        }
        let mean = if b.runs == 0 {
            0
        } else {
            b.nanos / u128::from(b.runs)
        };
        println!("{}/{id}: {} ns/iter (n={})", self.name, mean, b.runs);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the measured routine.
#[derive(Debug)]
pub struct Bencher {
    nanos: u128,
    runs: u32,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.nanos += start.elapsed().as_nanos();
        self.runs += 1;
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.nanos += start.elapsed().as_nanos();
        self.runs += 1;
    }
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` from group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
