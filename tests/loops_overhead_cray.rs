//! Figures 6 and 8, the §4.2 CRAY-1S comparison, and the Table 1 / Appendix
//! A circuit results, end-to-end.

use fo4depth::circuit::{ecl, fo4meas, latch, DeviceParams};
use fo4depth::study::cray::{cray_memory_sweep_with, kunkel_smith_equivalence};
use fo4depth::study::loops::{critical_loops_with, CriticalLoop};
use fo4depth::study::overhead::overhead_sensitivity_with;
use fo4depth::study::sim::SimParams;
use fo4depth::workload::{profiles, BenchClass};
use fo4depth_fo4::Fo4;

fn params() -> SimParams {
    SimParams {
        warmup: 8_000,
        measure: 30_000,
        seed: 1,
    }
}

#[test]
fn figure8_critical_loop_ordering() {
    // Issue–wakeup is the most IPC-sensitive loop, branch misprediction the
    // least (Figure 8), measured on integer benchmarks at the Alpha config.
    let profs = profiles::integer();
    let curves = critical_loops_with(&profs, &params(), &[0, 4, 8, 12]);
    let rel = |w: CriticalLoop| {
        curves
            .iter()
            .find(|c| c.which == w)
            .expect("curve")
            .final_relative_ipc()
    };
    let wakeup = rel(CriticalLoop::IssueWakeup);
    let load_use = rel(CriticalLoop::LoadUse);
    let branch = rel(CriticalLoop::BranchMispredict);

    assert!(wakeup < load_use, "wakeup {wakeup} vs load-use {load_use}");
    assert!(load_use < branch, "load-use {load_use} vs branch {branch}");
    // All three hurt; none catastrophically reverses.
    for (name, v) in [
        ("wakeup", wakeup),
        ("load-use", load_use),
        ("branch", branch),
    ] {
        assert!((0.15..1.0).contains(&v), "{name} relative IPC {v}");
    }
}

#[test]
fn figure6_optimum_insensitive_to_overhead() {
    // Figure 6: the paper finds the integer optimum pinned at 6 FO4 for
    // overheads 1–5. Our reproduction pins it at 6 for overheads 2–5,
    // drifting one sweep step at overhead 1 (see EXPERIMENTS.md) — a tiny
    // movement relative to the 2–16 FO4 design space.
    let profs = profiles::integer();
    let points: Vec<Fo4> = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 12.0]
        .into_iter()
        .map(Fo4::new)
        .collect();
    let curves =
        overhead_sensitivity_with(&profs, &params(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &points);
    let opt_at = |ovh: f64| {
        curves
            .iter()
            .find(|c| c.overhead == ovh)
            .expect("curve")
            .optimum_useful()
    };
    // Zero overhead rewards depth without bound (consistent with Fig 4a).
    assert!(opt_at(0.0) <= 3.0, "zero-overhead optimum {}", opt_at(0.0));
    // Overheads 2–5 pin the optimum at 6 exactly.
    for ovh in [2.0, 3.0, 4.0, 5.0] {
        assert_eq!(opt_at(ovh), 6.0, "optimum at overhead {ovh}");
    }
    // The low extreme drifts by at most ~one step of the design space.
    let opt = opt_at(1.0);
    assert!(
        (3.0..=9.0).contains(&opt),
        "optimum {opt} at overhead 1 far out of band"
    );
    // More overhead ⇒ strictly less BIPS at every shared point.
    let s1 = curves[1].sweep.series(Some(BenchClass::Integer));
    let s5 = curves[5].sweep.series(Some(BenchClass::Integer));
    for (a, b) in s1.iter().zip(&s5) {
        assert!(a.1 > b.1, "overhead must cost: {a:?} vs {b:?}");
    }
}

#[test]
fn section4_2_cray_memory_moves_optimum_shallower() {
    // With CRAY-1S-style flat memory the integer optimum moves from 6 FO4
    // to ≈ 11 FO4 (paper). Accept 8–14.
    let profs = profiles::integer();
    let points: Vec<Fo4> = (2..=16).map(|t| Fo4::new(f64::from(t))).collect();
    let sweep = cray_memory_sweep_with(&profs, &params(), &points);
    let (opt, _) = sweep.class_optimum(BenchClass::Integer);
    assert!(
        (8.0..=14.0).contains(&opt),
        "CRAY-memory integer optimum {opt} (paper ~11)"
    );
}

#[test]
fn table1_latch_overhead_is_one_fo4() {
    let p = DeviceParams::at_100nm();
    let fo4 = fo4meas::measure_fo4(&p).picoseconds();
    let m = latch::measure_latch_overhead(&p);
    let in_fo4 = m.overhead_ps / fo4;
    assert!(
        (0.7..1.3).contains(&in_fo4),
        "latch overhead {in_fo4} FO4 (paper 1.0)"
    );
    // And the FO4 itself is near the 36 ps rule of thumb at 100 nm.
    assert!((30.0..44.0).contains(&fo4), "FO4 {fo4} ps (rule: 36)");
}

#[test]
fn appendix_a_ecl_gate_equivalence() {
    let e = kunkel_smith_equivalence();
    assert!(
        (1.0..1.7).contains(&e.gate_fo4),
        "ECL gate {} FO4 (paper 1.36)",
        e.gate_fo4
    );
    // Kunkel & Smith's 8-gate scalar optimum lands near 11 FO4 — the
    // "more than twice the frequency" claim of §4.2 rests on this.
    assert!(
        (8.0..13.6).contains(&e.scalar_optimum_fo4),
        "scalar stage {} FO4 (paper 10.9)",
        e.scalar_optimum_fo4
    );
    let direct = ecl::measure_ecl_gate(&DeviceParams::at_100nm());
    assert!((direct.gate_in_fo4() - e.gate_fo4).abs() < 1e-9);
}
