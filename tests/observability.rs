//! Integration tests of the observability layer: slot-exact CPI identity,
//! non-perturbation, determinism, loop-sensitivity directions, and report
//! serialization.

use std::sync::Arc;

use fo4depth::pipeline::{Counters, StallCause};
use fo4depth::study::loops::{stretched_config, CriticalLoop};
use fo4depth::study::report;
use fo4depth::study::sim::{
    run_inorder, run_inorder_observed, run_ooo, run_ooo_observed, SimParams,
};
use fo4depth::util::Json;
use fo4depth::workload::{profiles, BenchProfile, TraceArena};
use fo4depth_pipeline::CoreConfig;

fn quick() -> SimParams {
    SimParams {
        warmup: 2_000,
        measure: 8_000,
        seed: 1,
    }
}

fn arena_of(p: &BenchProfile, params: &SimParams) -> Arc<TraceArena> {
    Arc::new(TraceArena::generate(
        p.clone(),
        params.seed,
        params.trace_len(),
    ))
}

fn arena(name: &str, params: &SimParams) -> Arc<TraceArena> {
    arena_of(&profiles::by_name(name).expect("known benchmark"), params)
}

fn counters_of(o: &fo4depth::study::sim::BenchOutcome) -> &Counters {
    o.counters.as_ref().expect("observed run carries counters")
}

/// `cycles × width == useful_slots + Σ stall_slots` for every benchmark on
/// both cores — the golden identity a CPI stack rests on.
#[test]
fn cpi_identity_holds_for_every_benchmark_on_both_cores() {
    let cfg = CoreConfig::alpha_like();
    let params = quick();
    for p in profiles::all() {
        let a = arena_of(&p, &params);
        for (label, outcome) in [
            ("ooo", run_ooo_observed(&cfg, &a, &params)),
            ("inorder", run_inorder_observed(&cfg, &a, &params)),
        ] {
            let c = counters_of(&outcome);
            assert!(
                c.identity_holds(),
                "{label}/{}: {} cycles × {} width != {} useful + {} stalled",
                p.name,
                c.cycles,
                c.width,
                c.useful_slots,
                c.stall_total()
            );
            assert_eq!(
                c.cycles, outcome.result.cycles,
                "{label}/{}: counters must cover exactly the measured interval",
                p.name
            );
        }
    }
}

/// Two runs with the same seed must produce bit-identical counter blocks.
#[test]
fn counters_are_bit_identical_across_same_seed_runs() {
    let cfg = CoreConfig::alpha_like();
    let params = quick();
    let t = arena("300.twolf", &params);
    let a = run_ooo_observed(&cfg, &t, &params);
    let b = run_ooo_observed(&cfg, &t, &params);
    assert_eq!(a, b, "observed OoO runs must be deterministic");
    let a = run_inorder_observed(&cfg, &t, &params);
    let b = run_inorder_observed(&cfg, &t, &params);
    assert_eq!(a, b, "observed in-order runs must be deterministic");
}

/// Enabling counters must not change any simulated outcome: the `result`
/// block is bit-identical with observation on and off.
#[test]
fn observation_does_not_perturb_the_simulation() {
    let cfg = CoreConfig::alpha_like();
    let params = quick();
    for name in ["164.gzip", "181.mcf", "171.swim", "179.art"] {
        let a = arena(name, &params);
        let plain = run_ooo(&cfg, &a, &params);
        let observed = run_ooo_observed(&cfg, &a, &params);
        assert_eq!(
            plain.result, observed.result,
            "{name}: observation perturbed the OoO core"
        );
        let plain = run_inorder(&cfg, &a, &params);
        let observed = run_inorder_observed(&cfg, &a, &params);
        assert_eq!(
            plain.result, observed.result,
            "{name}: observation perturbed the in-order core"
        );
    }
}

/// Occupancy histograms sample once per observed cycle: their bucket sums
/// equal the measured cycle count.
#[test]
fn occupancy_histograms_sum_to_measured_cycles() {
    let cfg = CoreConfig::alpha_like();
    let params = quick();
    let a = arena("164.gzip", &params);
    let c = run_ooo_observed(&cfg, &a, &params);
    let c = counters_of(&c);
    for (name, hist) in [
        ("window", &c.window_occupancy),
        ("rob", &c.rob_occupancy),
        ("lsq", &c.lsq_occupancy),
    ] {
        let total: u64 = hist.buckets().iter().sum();
        assert_eq!(total, c.cycles, "{name} histogram misses cycles");
        assert_eq!(hist.samples(), c.cycles);
    }
}

/// Figure 8 direction test: stretching one critical loop must monotonically
/// raise that loop's attributed stalls and monotonically lower IPC.
fn assert_loop_direction(which: CriticalLoop, attributed: &[StallCause]) {
    let base = CoreConfig::alpha_like();
    let params = quick();
    let a = arena("164.gzip", &params);
    let mut last_stalls = 0u64;
    let mut last_ipc = f64::INFINITY;
    let mut stalls_path = Vec::new();
    for extra in [0u64, 4, 10] {
        let cfg = stretched_config(&base, which, extra);
        let o = run_ooo_observed(&cfg, &a, &params);
        let c = counters_of(&o);
        let stalls: u64 = attributed.iter().map(|&cause| c.stalls(cause)).sum();
        let ipc = o.result.ipc();
        assert!(
            stalls >= last_stalls,
            "{which:?} at +{extra}: attributed stalls fell ({last_stalls} -> {stalls})"
        );
        assert!(
            ipc <= last_ipc + 1e-12,
            "{which:?} at +{extra}: IPC rose ({last_ipc} -> {ipc})"
        );
        stalls_path.push(stalls);
        last_stalls = stalls;
        last_ipc = ipc;
    }
    assert!(
        stalls_path.last() > stalls_path.first(),
        "{which:?}: stretching to +10 must strictly grow attributed stalls ({stalls_path:?})"
    );
}

#[test]
fn stretching_wakeup_loop_grows_wakeup_attributed_stalls() {
    assert_loop_direction(
        CriticalLoop::IssueWakeup,
        &[StallCause::WakeupWait, StallCause::WakeupChain],
    );
}

#[test]
fn stretching_load_use_loop_grows_load_use_stalls() {
    assert_loop_direction(CriticalLoop::LoadUse, &[StallCause::LoadUseWait]);
}

#[test]
fn stretching_mispredict_penalty_grows_recovery_stalls() {
    assert_loop_direction(
        CriticalLoop::BranchMispredict,
        &[StallCause::MispredictRecovery],
    );
}

/// A serialized outcome survives a render → parse round trip unchanged.
#[test]
fn outcome_json_round_trips() {
    let cfg = CoreConfig::alpha_like();
    let params = quick();
    let a = arena("181.mcf", &params);
    let outcome = run_ooo_observed(&cfg, &a, &params);
    let doc = report::outcome_json(&outcome, 280.8);
    let parsed = Json::parse(&doc.render()).expect("rendered JSON parses");
    assert_eq!(parsed, doc, "render/parse must be lossless");
    assert_eq!(parsed.get("name").and_then(Json::as_str), Some("181.mcf"));
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("cycles"))
            .and_then(Json::as_u64),
        Some(outcome.result.cycles)
    );
    let c = counters_of(&outcome);
    let parsed_stalls = parsed
        .get("counters")
        .and_then(|j| j.get("stall_slots"))
        .expect("stall block");
    for cause in StallCause::ALL {
        assert_eq!(
            parsed_stalls.get(cause.key()).and_then(Json::as_u64),
            Some(c.stalls(cause)),
            "{} mismatch after round trip",
            cause.key()
        );
    }
}
