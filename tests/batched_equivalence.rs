//! Differential equivalence of the lane-parallel batched engine against
//! the scalar reference path.
//!
//! The scalar sweep ([`depth_sweep_arenas`], [`CellSpec::run`]) is the
//! repository's oracle: it is the seed implementation, untouched by the
//! batched engine's tuned data structures. Every batched entry point —
//! whole sweeps, per-benchmark lane groups, the serve tier's cell-granular
//! assembly — must reproduce it **byte for byte**: cycles, BIPS inputs,
//! per-cause stall counters, occupancy histograms, and the optimum depth
//! they imply. Any divergence is localized by the shared
//! [`common::assert_sweeps_bitwise_eq`] diagnostic down to the
//! `(clock point × benchmark × field)` that first drifted.

mod common;

use proptest::prelude::*;

use fo4depth::exec::Pool;
use fo4depth::study::cells::{assemble_sweep, run_cell_group, sweep_cells, CellSpec};
use fo4depth::study::latency::StructureSet;
use fo4depth::study::scaler::ScaledMachine;
use fo4depth::study::sim::{run_ooo, run_ooo_batched, run_ooo_observed, BenchOutcome, SimParams};
use fo4depth::study::sweep::{
    build_arenas, depth_sweep_arenas, depth_sweep_arenas_batched, depth_sweep_with, CoreKind,
    SweepSpec,
};
use fo4depth::workload::{profiles, BenchProfile};
use fo4depth_fo4::Fo4;
use fo4depth_pipeline::WindowConfig;
use fo4depth_uarch::SelectMode;

/// The serve tier's structure-set tag for [`StructureSet::alpha_21264`].
const TAG: &str = "alpha_21264";

fn test_profiles() -> Vec<BenchProfile> {
    ["164.gzip", "171.swim", "181.mcf"]
        .into_iter()
        .map(|n| profiles::by_name(n).expect("known benchmark"))
        .collect()
}

fn test_params() -> SimParams {
    SimParams {
        warmup: 2_000,
        measure: 6_000,
        seed: 1,
    }
}

fn test_points() -> Vec<Fo4> {
    [3.0, 6.8, 12.0].into_iter().map(Fo4::new).collect()
}

/// The tentpole guarantee: for both cores, observed and unobserved, and
/// every lane-count shape (serial lanes, even splits, ragged tails, one
/// all-points batch), the batched sweep is bit-identical to the scalar
/// reference over the same arenas.
#[test]
fn batched_sweep_is_bit_identical_to_scalar() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let points = test_points();
    let pool = Pool::new(2);
    let arenas = build_arenas(&profs, &params, &pool);
    for core in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        for observed in [false, true] {
            let spec = SweepSpec {
                core,
                profiles: &profs,
                params: &params,
                structures: &structures,
                overhead: Fo4::new(1.8),
                points: &points,
                observed,
            };
            let scalar = depth_sweep_arenas(&spec, &arenas, &pool);
            for lanes in [1, 2, points.len(), usize::MAX] {
                let batched = depth_sweep_arenas_batched(&spec, &arenas, &pool, lanes);
                common::assert_sweeps_bitwise_eq(
                    &format!("{core:?} observed={observed} lanes={lanes}"),
                    &scalar,
                    &batched,
                );
            }
        }
    }
}

/// A lane batch is one pool task: the batched sweep must be `--jobs`
/// invariant, like the scalar engine it mirrors.
#[test]
fn batched_sweep_is_pool_size_invariant() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let points = test_points();
    let serial = Pool::new(1);
    let wide = Pool::new(4);
    let arenas = build_arenas(&profs, &params, &serial);
    for core in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let spec = SweepSpec {
            core,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points: &points,
            observed: false,
        };
        let a = depth_sweep_arenas_batched(&spec, &arenas, &serial, 2);
        let b = depth_sweep_arenas_batched(&spec, &arenas, &wide, 2);
        common::assert_sweeps_bitwise_eq(
            &format!("{core:?}: batched sweep across pool sizes"),
            &a,
            &b,
        );
    }
}

/// Lanes whose windows are not all conventional fall back to the
/// `Box<dyn WindowModel>` lane path. That path must be just as
/// bit-faithful — including a mixed batch where a conventional lane rides
/// alongside segmented and speculative ones.
#[test]
fn non_conventional_windows_batch_bit_identically() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let pool = Pool::new(1);
    let arenas = build_arenas(&profs[..1], &params, &pool);
    let machine = ScaledMachine::at(&structures, Fo4::new(6.8), Fo4::new(1.8));
    let mut segmented = machine.config.clone();
    segmented.window = WindowConfig::Segmented {
        capacity: 32,
        stages: 4,
        select: SelectMode::figure12(),
    };
    let mut speculative = machine.config.clone();
    speculative.window = WindowConfig::Speculative {
        capacity: 32,
        reschedule_penalty: 2,
    };
    let conventional = machine.config.clone();
    for observed in [false, true] {
        let configs = [&segmented, &speculative, &conventional];
        let batched = run_ooo_batched(&configs, &arenas[0], &params, observed);
        let scalar: Vec<BenchOutcome> = configs
            .iter()
            .map(|cfg| {
                if observed {
                    run_ooo_observed(cfg, &arenas[0], &params)
                } else {
                    run_ooo(cfg, &arenas[0], &params)
                }
            })
            .collect();
        common::assert_outcomes_bitwise_eq(
            &format!("mixed-window batch, observed={observed}"),
            &scalar,
            &batched,
        );
    }
}

/// The serve tier's cache-fill seam: a lane group filled through
/// [`run_cell_group`] returns, cell for cell, exactly what the scalar
/// [`CellSpec::run`] returns — so a batch-filled cache entry and a
/// scalar-filled one are interchangeable.
#[test]
fn cell_group_matches_scalar_cells() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let points = test_points();
    let pool = Pool::new(1);
    let arenas = build_arenas(&profs, &params, &pool);
    for observed in [false, true] {
        let cells = sweep_cells(
            CoreKind::OutOfOrder,
            &profs,
            &params,
            Fo4::new(1.8),
            &points,
            observed,
            TAG,
        );
        for (bi, arena) in arenas.iter().enumerate() {
            let group: Vec<CellSpec> = (0..points.len())
                .map(|pi| cells[pi * profs.len() + bi].clone())
                .collect();
            let batched = run_cell_group(&group, &structures, arena);
            let scalar: Vec<BenchOutcome> =
                group.iter().map(|c| c.run(&structures, arena)).collect();
            common::assert_outcomes_bitwise_eq(
                &format!("cell group {} observed={observed}", profs[bi].name),
                &scalar,
                &batched,
            );
        }
    }
}

/// End-to-end through the serve tier's decomposition: `sweep_cells` →
/// per-benchmark batched fills (with one benchmark deliberately filled by
/// the scalar path, the warm-cache case) → `assemble_sweep` reproduces
/// `depth_sweep_with` byte for byte. This is the full cache-tier
/// round-trip the daemon performs.
#[test]
fn assembled_batched_cells_match_depth_sweep_with() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let points = test_points();
    let pool = Pool::new(2);
    let arenas = build_arenas(&profs, &params, &pool);
    let reference = depth_sweep_with(
        CoreKind::OutOfOrder,
        &profs,
        &params,
        &structures,
        Fo4::new(1.8),
        &points,
    );
    let cells = sweep_cells(
        CoreKind::OutOfOrder,
        &profs,
        &params,
        Fo4::new(1.8),
        &points,
        false,
        TAG,
    );
    let mut grid: Vec<Option<BenchOutcome>> = Vec::new();
    grid.resize_with(cells.len(), || None);
    for (bi, arena) in arenas.iter().enumerate() {
        let group: Vec<CellSpec> = (0..points.len())
            .map(|pi| cells[pi * profs.len() + bi].clone())
            .collect();
        // Benchmark 0 plays the warm cache: its cells were filled earlier
        // by the scalar path. The rest are cold batched fills.
        let outcomes = if bi == 0 {
            group.iter().map(|c| c.run(&structures, arena)).collect()
        } else {
            run_cell_group(&group, &structures, arena)
        };
        for (pi, outcome) in outcomes.into_iter().enumerate() {
            grid[pi * profs.len() + bi] = Some(outcome);
        }
    }
    let assembled = assemble_sweep(
        CoreKind::OutOfOrder,
        &structures,
        Fo4::new(1.8),
        &points,
        profs.len(),
        grid.into_iter().map(|o| o.expect("cell filled")).collect(),
    );
    common::assert_sweeps_bitwise_eq(
        "serve-tier assembly vs direct sweep",
        &reference,
        &assembled,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lane-count invariance over arbitrary grid shapes: any lane count
    /// (serial, ragged tails, single-point batches, more lanes than
    /// points) produces bit-identical outcomes, and the cell fingerprints
    /// that would key the persistent cache are unchanged by how the grid
    /// was batched.
    #[test]
    fn any_lane_count_is_bit_identical(
        lanes in 1usize..8,
        npoints in 1usize..5,
        observed in any::<bool>(),
    ) {
        let profs: Vec<BenchProfile> = ["164.gzip", "181.mcf"]
            .into_iter()
            .map(|n| profiles::by_name(n).expect("known benchmark"))
            .collect();
        let params = SimParams { warmup: 500, measure: 1_500, seed: 1 };
        let all_points: Vec<Fo4> =
            [2.0, 5.5, 8.0, 13.0].into_iter().map(Fo4::new).collect();
        let points = &all_points[..npoints];
        let structures = StructureSet::alpha_21264();
        let pool = Pool::new(2);
        let arenas = build_arenas(&profs, &params, &pool);
        let spec = SweepSpec {
            core: CoreKind::OutOfOrder,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points,
            observed,
        };
        let scalar = depth_sweep_arenas(&spec, &arenas, &pool);
        let batched = depth_sweep_arenas_batched(&spec, &arenas, &pool, lanes);
        common::assert_sweeps_bitwise_eq(
            &format!("lanes={lanes} npoints={npoints} observed={observed}"),
            &scalar,
            &batched,
        );
        // The cache key is a pure function of the cell spec; batching must
        // not perturb it (and the grid's cells must not collide).
        let fingerprints: Vec<u64> = sweep_cells(
            CoreKind::OutOfOrder,
            &profs,
            &params,
            Fo4::new(1.8),
            points,
            observed,
            TAG,
        )
        .iter()
        .map(CellSpec::fingerprint)
        .collect();
        let again: Vec<u64> = sweep_cells(
            CoreKind::OutOfOrder,
            &profs,
            &params,
            Fo4::new(1.8),
            points,
            observed,
            TAG,
        )
        .iter()
        .map(CellSpec::fingerprint)
        .collect();
        prop_assert_eq!(&fingerprints, &again);
        let mut unique = fingerprints.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), fingerprints.len());
    }
}
