//! Bit-determinism of the parallel depth sweep: the same [`SweepSpec`]
//! must produce byte-identical results on a serial pool, a 2-lane pool,
//! and a machine-width pool, for both cores, observed and unobserved.
//!
//! This is the execution engine's acceptance bar — parallelism is purely a
//! scheduling concern and must never leak into simulated outcomes.

mod common;

use fo4depth::exec::Pool;
use fo4depth::study::latency::StructureSet;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{depth_sweep_spec, CoreKind, DepthSweep, SweepSpec};
use fo4depth::workload::profiles;
use fo4depth_fo4::Fo4;

fn params() -> SimParams {
    SimParams {
        warmup: 2_000,
        measure: 6_000,
        seed: 1,
    }
}

fn points() -> Vec<Fo4> {
    [3.0, 6.0, 12.0].into_iter().map(Fo4::new).collect()
}

/// Runs one spec on pools of 1, 2, and machine-width lanes and checks the
/// three sweeps are identical (including their rendered JSON bytes).
fn assert_pool_invariant(core: CoreKind, observed: bool) {
    let profs = vec![
        profiles::by_name("164.gzip").unwrap(),
        profiles::by_name("181.mcf").unwrap(),
        profiles::by_name("171.swim").unwrap(),
    ];
    let params = params();
    let structures = StructureSet::alpha_21264();
    let points = points();
    let spec = SweepSpec {
        core,
        profiles: &profs,
        params: &params,
        structures: &structures,
        overhead: Fo4::new(1.8),
        points: &points,
        observed,
    };
    let max = fo4depth::exec::default_threads().max(2);
    let sweeps: Vec<DepthSweep> = [1, 2, max]
        .into_iter()
        .map(|n| depth_sweep_spec(&spec, &Pool::new(n)))
        .collect();
    for (i, s) in sweeps.iter().enumerate().skip(1) {
        common::assert_sweeps_bitwise_eq(
            &format!(
                "{core:?} observed={observed}, pool size {} vs serial",
                [1, 2, max][i]
            ),
            &sweeps[0],
            s,
        );
    }
}

#[test]
fn ooo_sweep_is_pool_size_invariant() {
    assert_pool_invariant(CoreKind::OutOfOrder, false);
}

#[test]
fn inorder_sweep_is_pool_size_invariant() {
    assert_pool_invariant(CoreKind::InOrder, false);
}

#[test]
fn ooo_observed_sweep_is_pool_size_invariant() {
    assert_pool_invariant(CoreKind::OutOfOrder, true);
}

#[test]
fn inorder_observed_sweep_is_pool_size_invariant() {
    assert_pool_invariant(CoreKind::InOrder, true);
}
