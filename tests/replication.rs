//! End-to-end tests of the replicated, self-healing shard tier: R-way
//! replication, scripted network-fault injection, and dynamic ring
//! membership — all under the same contract as plain sharding: routed
//! responses stay byte-identical to a single node no matter which
//! replica serves, which shard dies, or which fault fires. Only
//! `/metrics` may differ.

mod common;

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use common::{counter, get, metrics, post, start, StreamingClient, TestServer};
use fo4depth::serve::client::{InjectedNetFault, NetFault, ScriptedNetFaults};
use fo4depth::serve::ServeConfig;
use fo4depth::util::Json;

const DENSE: &str = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.5,7.3,9.1],"warmup":400,"measure":1500,"seed":31}"#;
const ADAPTIVE: &str = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.5,7.3,9.1],"warmup":400,"measure":1500,"seed":31,"mode":"adaptive"}"#;
const STREAMED: &str = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.5,7.3,9.1],"warmup":400,"measure":1500,"seed":31,"mode":"adaptive","stream":true}"#;
const YIELD: &str = r#"{"benchmarks":["164.gzip"],"points":[5.0,7.0],"warmup":400,"measure":1500,"seed":31,"samples":6,"variation_seed":7}"#;

/// Serializes the tests in this binary. Each one stands up a full tier
/// (3-4 servers sweeping in parallel) and asserts load-sensitive
/// invariants — exact injected-fault counts, `local_fills == 0` after a
/// kill — that only hold when the tier isn't starved by a concurrent
/// test saturating the machine.
fn exclusive_tier() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Starts a router fronting `shards` with the given replication factor.
fn start_replicated(shards: &[&TestServer], replication: usize) -> TestServer {
    let mut config = ServeConfig {
        shards: shards.iter().map(|s| s.addr.to_string()).collect(),
        ..ServeConfig::default()
    };
    config.upstream.replication = replication;
    start(config)
}

/// Asserts every routed mode (dense, adaptive, streamed, yield) matches
/// the single-node oracle byte for byte.
fn assert_all_modes_identical(context: &str, router: SocketAddr, single: SocketAddr) {
    let routed = post(router, "/v1/sweep", DENSE);
    let local = post(single, "/v1/sweep", DENSE);
    assert_eq!(routed.status, 200, "{context}: body: {}", routed.body);
    assert_eq!(routed.body, local.body, "{context}: dense diverged");

    let routed = post(router, "/v1/sweep", ADAPTIVE);
    let local = post(single, "/v1/sweep", ADAPTIVE);
    assert_eq!(routed.status, 200, "{context}: body: {}", routed.body);
    assert_eq!(routed.body, local.body, "{context}: adaptive diverged");

    let routed = StreamingClient::post(router, "/v1/sweep", STREAMED).drain();
    let local = StreamingClient::post(single, "/v1/sweep", STREAMED).drain();
    assert_eq!(
        routed.concat(),
        local.concat(),
        "{context}: streamed diverged"
    );

    let routed = post(router, "/v1/yield", YIELD);
    let local = post(single, "/v1/yield", YIELD);
    assert_eq!(routed.status, 200, "{context}: body: {}", routed.body);
    assert_eq!(routed.body, local.body, "{context}: yield diverged");
}

#[test]
fn replicated_tier_survives_a_dead_shard_and_injected_faults_byte_identically() {
    let _tier = exclusive_tier();
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let shard_c = start(ServeConfig::default());
    let single = start(ServeConfig::default());

    // Scripted network-fault schedule on the scatter path: the first
    // dial is refused, then reads hit a mid-body hang, a truncated
    // chunk, and a garbage frame. Every fault must be healed by retry
    // or failover without touching response bytes.
    let faults = ScriptedNetFaults::new();
    faults.script_connect(Some(InjectedNetFault::Refuse));
    faults.script_read(Some(InjectedNetFault::Hang));
    faults.script_read(None);
    faults.script_read(Some(InjectedNetFault::Truncate));
    faults.script_read(None);
    faults.script_read(Some(InjectedNetFault::Garbage));

    let mut config = ServeConfig {
        shards: vec![
            shard_a.addr.to_string(),
            shard_b.addr.to_string(),
            shard_c.addr.to_string(),
        ],
        ..ServeConfig::default()
    };
    config.upstream.replication = 2;
    config.upstream.net_fault = Arc::clone(&faults) as Arc<_>;
    let router = start(config);

    // Phase 1: faults firing, all shards alive.
    assert_all_modes_identical("faulted tier", router.addr, single.addr);
    assert_eq!(faults.injected(), 4, "full fault schedule consumed");

    // Phase 2: kill one replica outright; the other replica of every
    // cell keeps serving, still byte-identical. A fresh seed forces a
    // cold scatter so the dead shard is actually missed.
    drop(shard_b);
    let cold = &DENSE.replace("\"seed\":31", "\"seed\":37");
    let routed = post(router.addr, "/v1/sweep", cold);
    let local = post(single.addr, "/v1/sweep", cold);
    assert_eq!(routed.status, 200, "body: {}", routed.body);
    assert_eq!(routed.body, local.body, "post-kill sweep diverged");

    let m = metrics(router.addr);
    assert!(
        counter(&m, &["router", "injected_faults"]) >= 4,
        "injected faults not surfaced: {}",
        m.pretty()
    );
    assert!(
        counter(&m, &["router", "failovers"]) >= 1,
        "no failover recorded after a replica died: {}",
        m.pretty()
    );
    assert_eq!(counter(&m, &["router", "ring", "replication"]), 2);
    assert_eq!(counter(&m, &["router", "ring", "shards"]), 3);
    assert_eq!(counter(&m, &["router", "local_fills"]), 0);
}

#[test]
fn replica_reads_and_writes_are_counted_and_warm_the_peer_replica() {
    let _tier = exclusive_tier();
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let router = start_replicated(&[&shard_a, &shard_b], 2);
    let single = start(ServeConfig::default());

    assert_all_modes_identical("two-way replication", router.addr, single.addr);

    // With R = 2 over two shards every cell has a replica on each; the
    // gathered records are fanned out so the non-serving replica is
    // warm too. The fan-out is asynchronous only in the sense that it
    // happens after the serve — by the time the response returned it
    // has already been pushed.
    let m = metrics(router.addr);
    assert!(
        counter(&m, &["router", "replica_writes"]) >= 1,
        "no replica warm-writes recorded: {}",
        m.pretty()
    );

    // The peer saw real `/v1/records` installs.
    let records_requests: u64 = [shard_a.addr, shard_b.addr]
        .iter()
        .map(|&addr| counter(&metrics(addr), &["endpoints", "records", "requests"]))
        .sum();
    assert!(
        records_requests >= 1,
        "no shard-side /v1/records install observed"
    );

    // A warm rerun is served without re-simulating: the router answers
    // from its response cache or the shards from their warmed cells;
    // either way the bytes repeat exactly.
    let first = post(router.addr, "/v1/sweep", DENSE);
    let second = post(router.addr, "/v1/sweep", DENSE);
    assert_eq!(first.body, second.body, "warm rerun diverged");
}

#[test]
fn ring_membership_updates_rebuild_drain_and_stay_byte_identical() {
    let _tier = exclusive_tier();
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let shard_c = start(ServeConfig::default());
    let router = start_replicated(&[&shard_a, &shard_b, &shard_c], 2);
    let single = start(ServeConfig::default());

    let routed = post(router.addr, "/v1/sweep", DENSE);
    let local = post(single.addr, "/v1/sweep", DENSE);
    assert_eq!(routed.body, local.body, "pre-update sweep diverged");

    // Remove a shard: the ring rebuilds, in-flight work drains, and the
    // response reports the surviving membership.
    let remove = format!(r#"{{"remove":["{}"]}}"#, shard_c.addr);
    let r = post(router.addr, "/v1/ring", &remove);
    assert_eq!(r.status, 200, "body: {}", r.body);
    let doc = r.json();
    assert_eq!(
        doc.get("shards").and_then(Json::as_arr).map(|a| a.len()),
        Some(2),
        "membership after remove: {}",
        r.body
    );
    assert_eq!(counter(&doc, &["rebuilds"]), 1);

    // A cold sweep on the shrunk ring is still byte-identical.
    let cold = &DENSE.replace("\"seed\":31", "\"seed\":41");
    let routed = post(router.addr, "/v1/sweep", cold);
    let local = post(single.addr, "/v1/sweep", cold);
    assert_eq!(routed.body, local.body, "post-remove sweep diverged");

    // Re-add the shard: its stable identity is restored, so keys move
    // back to their original owners (~K/N movement each way).
    let add = format!(r#"{{"add":["{}"]}}"#, shard_c.addr);
    let r = post(router.addr, "/v1/ring", &add);
    assert_eq!(r.status, 200, "body: {}", r.body);
    assert_eq!(
        r.json()
            .get("shards")
            .and_then(Json::as_arr)
            .map(|a| a.len()),
        Some(3)
    );

    let colder = &DENSE.replace("\"seed\":31", "\"seed\":43");
    let routed = post(router.addr, "/v1/sweep", colder);
    let local = post(single.addr, "/v1/sweep", colder);
    assert_eq!(routed.body, local.body, "post-re-add sweep diverged");

    let m = metrics(router.addr);
    assert_eq!(
        counter(&m, &["router", "ring", "rebuilds"]),
        2,
        "both membership updates counted: {}",
        m.pretty()
    );
    assert_eq!(counter(&m, &["router", "ring", "shards"]), 3);

    // Structured rejection: removing an unknown shard, re-adding a
    // present one, or emptying the ring are all 400s, not panics.
    for bad in [
        r#"{"remove":["127.0.0.1:1"]}"#.to_string(),
        format!(r#"{{"add":["{}"]}}"#, shard_a.addr),
        format!(
            r#"{{"remove":["{}","{}","{}"]}}"#,
            shard_a.addr, shard_b.addr, shard_c.addr
        ),
        r#"{"add":[],"remove":[]}"#.to_string(),
    ] {
        let r = post(router.addr, "/v1/ring", &bad);
        assert!(
            r.status == 400 || r.status == 422,
            "accepted bad update {bad}: {} {}",
            r.status,
            r.body
        );
    }

    // On a plain shard the endpoint does not exist.
    let r = post(shard_a.addr, "/v1/ring", &remove);
    assert_eq!(r.status, 404, "shard accepted a ring update: {}", r.body);
}

#[test]
fn router_healthz_aggregates_per_shard_prober_state() {
    let _tier = exclusive_tier();
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let mut config = ServeConfig {
        shards: vec![shard_a.addr.to_string(), shard_b.addr.to_string()],
        ..ServeConfig::default()
    };
    // A fast prober so the test observes state changes promptly.
    config.upstream.probe_interval = Duration::from_millis(50);
    let router = start(config);

    // Healthy tier: status ok, both shards up, probes recent.
    let healthy = wait_for_health(router.addr, |doc| {
        doc.get("status").and_then(Json::as_str) == Some("ok")
            && shard_states(doc)
                .iter()
                .all(|(up, _, probed)| *up && *probed)
    });
    assert_eq!(
        shard_states(&healthy).len(),
        2,
        "healthz lists every shard: {}",
        healthy.pretty()
    );

    // Kill a shard: the prober flags it down with a rising consecutive
    // failure count, and the tier degrades — without taking /healthz
    // itself unhealthy (the router still serves).
    drop(shard_b);
    let degraded = wait_for_health(router.addr, |doc| {
        doc.get("status").and_then(Json::as_str) == Some("degraded")
    });
    let states = shard_states(&degraded);
    assert!(
        states.iter().any(|(up, fails, _)| !up && *fails >= 1),
        "dead shard not flagged with failures: {}",
        degraded.pretty()
    );
    assert!(
        states.iter().any(|(up, _, _)| *up),
        "survivor flagged down: {}",
        degraded.pretty()
    );
}

/// Polls the router's `/healthz` until `ready` accepts the document.
fn wait_for_health(addr: SocketAddr, ready: impl Fn(&Json) -> bool) -> Json {
    let mut last = Json::Null;
    for _ in 0..200 {
        let r = get(addr, "/healthz");
        assert_eq!(r.status, 200);
        last = r.json();
        if ready(&last) {
            return last;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("healthz never converged; last: {}", last.pretty());
}

/// Extracts `(up, consecutive_failures, has_probed)` per shard.
fn shard_states(doc: &Json) -> Vec<(bool, u64, bool)> {
    doc.get("shards")
        .and_then(Json::as_arr)
        .expect("healthz shards")
        .iter()
        .map(|s| {
            let up = matches!(s.get("up"), Some(Json::Bool(true)));
            let fails = s
                .get("consecutive_failures")
                .and_then(Json::as_u64)
                .expect("failure count");
            let probed = s.get("last_probe_us").and_then(Json::as_u64).is_some();
            (up, fails, probed)
        })
        .collect()
}
