//! The paper's headline results, asserted end-to-end through the full
//! stack (circuit → cacti → workloads → cores → study).
//!
//! Tolerance policy (DESIGN.md §6): optima within ±1 FO4 of the paper's,
//! curve orderings exact, magnitudes directionally right.

use fo4depth::fo4::TechNode;
use fo4depth::study::experiments::PaperHeadlines;
use fo4depth::study::latency::StructureSet;
use fo4depth::study::scaler::ScaledMachine;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{depth_sweep, depth_sweep_with, standard_points, CoreKind};
use fo4depth::workload::{profiles, BenchClass};
use fo4depth_fo4::Fo4;

fn params() -> SimParams {
    SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    }
}

#[test]
fn figure5_out_of_order_optima() {
    let paper = PaperHeadlines::isca2002();
    let sweep = depth_sweep(CoreKind::OutOfOrder, &profiles::all(), &params());

    let (int_opt, int_bips) = sweep.class_optimum(BenchClass::Integer);
    assert!(
        (int_opt - paper.ooo_integer_optimum).abs() < 0.5,
        "integer optimum {int_opt} (paper {})",
        paper.ooo_integer_optimum
    );

    let (vec_opt, vec_bips) = sweep.class_optimum(BenchClass::VectorFp);
    assert!(
        (vec_opt - paper.ooo_vector_optimum).abs() <= 1.0,
        "vector optimum {vec_opt} (paper {})",
        paper.ooo_vector_optimum
    );

    let (nv_opt, nv_bips) = sweep.class_optimum(BenchClass::NonVectorFp);
    assert!(
        (nv_opt - paper.ooo_non_vector_optimum).abs() <= 1.0,
        "non-vector optimum {nv_opt} (paper {})",
        paper.ooo_non_vector_optimum
    );

    // FP optima sit at or below (deeper than) the integer optimum, and the
    // class performance ordering matches Figure 5.
    assert!(vec_opt <= int_opt);
    assert!(
        vec_bips > int_bips,
        "vector {vec_bips} vs integer {int_bips}"
    );
    assert!(nv_bips > int_bips);

    // The optimal integer clock is ~3.6 GHz at 100 nm (§7).
    let m = ScaledMachine::at(
        &StructureSet::alpha_21264(),
        Fo4::new(int_opt),
        Fo4::new(1.8),
    );
    let ghz = 1000.0 / m.clock.period(TechNode::NM_100).get();
    assert!(
        (ghz - paper.integer_frequency_ghz).abs() < 0.3,
        "optimal frequency {ghz} GHz"
    );
}

#[test]
fn figure4b_in_order_integer_optimum() {
    let sweep = depth_sweep(CoreKind::InOrder, &profiles::integer(), &params());
    let (opt, _) = sweep.class_optimum(BenchClass::Integer);
    assert!(
        (opt - 6.0).abs() < 0.5,
        "in-order integer optimum {opt} (paper 6)"
    );
}

#[test]
fn figure4a_no_overhead_rewards_depth() {
    // Without overhead, performance improves as the pipeline deepens
    // (Figure 4a): the best point is at the deep end, and the gain from
    // halving t_useful is far below the ideal 2x (paper: 18% for integer
    // codes from 8 to 4 FO4).
    let points: Vec<Fo4> = [2.0, 4.0, 8.0, 16.0].into_iter().map(Fo4::new).collect();
    let sweep = depth_sweep_with(
        CoreKind::InOrder,
        &profiles::integer(),
        &params(),
        &StructureSet::alpha_21264(),
        Fo4::new(0.0),
        &points,
    );
    let series = sweep.series(Some(BenchClass::Integer));
    let at = |t: f64| series.iter().find(|p| p.0 == t).expect("point").1;
    assert!(at(2.0) > at(8.0), "depth must pay with zero overhead");
    assert!(at(4.0) > at(8.0));
    let gain = at(4.0) / at(8.0);
    assert!(
        (1.05..1.6).contains(&gain),
        "4-vs-8 FO4 gain {gain} (ideal 2.0, paper ~1.18)"
    );
}

#[test]
fn two_x_headroom_over_current_designs() {
    // §1/§7: further pipelining can at best improve integer performance by
    // about a factor of two over designs at the then-current ~12-17 FO4.
    let sweep = depth_sweep(CoreKind::OutOfOrder, &profiles::integer(), &params());
    let series = sweep.series(Some(BenchClass::Integer));
    let best = sweep.class_optimum(BenchClass::Integer).1;
    let current = series
        .iter()
        .filter(|p| p.0 >= 12.0)
        .map(|p| p.1)
        .fold(f64::MIN, f64::max);
    let headroom = best / current;
    assert!(
        (1.05..2.5).contains(&headroom),
        "headroom {headroom} (paper: at most ~2x)"
    );
}

#[test]
fn full_sweep_uses_standard_points() {
    assert_eq!(standard_points().len(), 15);
    assert_eq!(standard_points()[0], Fo4::new(2.0));
    assert_eq!(standard_points()[14], Fo4::new(16.0));
}
