//! Crash-safety tests for the persistent cell cache: warm restarts must
//! serve byte-identical responses without re-simulating, a SIGKILLed
//! daemon must recover its intact log prefix (and count the torn tail),
//! and injected I/O faults must degrade the store to memory-only without
//! ever corrupting a response. The record/outcome codecs additionally get
//! property-tested against truncation and bit flips.

mod common;

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

use common::{
    counter, metrics, post, restart_on_cache_dir, start_with_cache_dir, wait_for_counter,
};
use fo4depth::fo4::Fo4;
use fo4depth::serve::api::{Engine, RequestLimits, SweepRequest};
use fo4depth::serve::store::{
    self, decode_outcome, decode_record, encode_record, CellStore, FsyncPolicy, InjectedFault,
    ScriptedFaults, StoreConfig, LOG_FILE,
};
use fo4depth::serve::ServeConfig;
use fo4depth::study::report;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::CoreKind;
use fo4depth::util::{Json, TempDir};
use fo4depth::workload::profiles;
use proptest::prelude::*;

/// The request every restart test replays, and its offline twin.
const BODY: &str = r#"{"benchmarks":["164.gzip"],"points":[4,6],"warmup":1000,"measure":4000}"#;
const CELLS: u64 = 2;

fn offline_report() -> String {
    let profs = vec![profiles::by_name("164.gzip").expect("gzip")];
    let params = SimParams {
        warmup: 1_000,
        measure: 4_000,
        seed: 1,
    };
    let points: Vec<Fo4> = [4.0, 6.0].into_iter().map(Fo4::new).collect();
    report::generate(CoreKind::OutOfOrder, &profs, &params, &points).pretty()
}

fn persisted(addr: SocketAddr, path: &str) -> u64 {
    counter(&metrics(addr), &["caches", "persistent", path])
}

#[test]
fn warm_restart_serves_identical_bytes_without_resimulating() {
    let cold_body;
    let dir;
    {
        let mut server = start_with_cache_dir(ServeConfig {
            fsync: FsyncPolicy::Always,
            ..ServeConfig::default()
        });
        let cold = post(server.addr, "/v1/report", BODY);
        assert_eq!(cold.status, 200, "body: {}", cold.body);
        cold_body = cold.body;
        // Persistence is write-behind: wait for both cells to land.
        wait_for_counter(server.addr, &["caches", "persistent", "appended"], CELLS);
        dir = server.take_cache_dir();
    } // graceful shutdown drains and flushes the store

    let server = restart_on_cache_dir(ServeConfig::default(), dir);
    let warm_start = Instant::now();
    let warm = post(server.addr, "/v1/report", BODY);
    let warm_elapsed = warm_start.elapsed();
    assert_eq!(warm.status, 200, "body: {}", warm.body);
    assert_eq!(warm.body, cold_body, "warm restart changed the bytes");
    assert_eq!(warm.body, offline_report(), "served != offline report");

    let m = metrics(server.addr);
    assert_eq!(
        counter(&m, &["caches", "persistent", "recovered_entries"]),
        CELLS
    );
    assert_eq!(counter(&m, &["caches", "persistent", "hits"]), CELLS);
    assert_eq!(
        counter(&m, &["caches", "arenas", "misses"]),
        0,
        "a disk hit must not materialize a trace arena (i.e. re-simulate)"
    );
    // Not a benchmark, just a sanity bound: two disk reads must beat two
    // full simulations by a wide margin.
    println!("warm restart served in {warm_elapsed:?}");
}

#[test]
fn corrupt_tail_is_dropped_counted_and_survived() {
    let cold_body;
    let dir;
    {
        let mut server = start_with_cache_dir(ServeConfig {
            fsync: FsyncPolicy::Always,
            ..ServeConfig::default()
        });
        let cold = post(server.addr, "/v1/report", BODY);
        assert_eq!(cold.status, 200);
        cold_body = cold.body;
        wait_for_counter(server.addr, &["caches", "persistent", "appended"], CELLS);
        dir = server.take_cache_dir();
    }

    // A torn in-flight append: a record prefix with no payload or CRC.
    let torn = &encode_record(0xDEAD_BEEF, b"never finished")[..10];
    let log = dir.path().join(LOG_FILE);
    let mut bytes = std::fs::read(&log).expect("read log");
    bytes.extend_from_slice(torn);
    std::fs::write(&log, &bytes).expect("tear log");

    let server = restart_on_cache_dir(ServeConfig::default(), dir);
    assert_eq!(persisted(server.addr, "recovered_entries"), CELLS);
    assert_eq!(
        persisted(server.addr, "dropped_bytes"),
        torn.len() as u64,
        "exactly the torn tail is dropped"
    );
    let warm = post(server.addr, "/v1/report", BODY);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold_body, "intact prefix still serves");
    assert_eq!(persisted(server.addr, "hits"), CELLS);
}

/// A `fo4depth serve` subprocess — the real binary, killable with SIGKILL.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(cache_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fo4depth"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                &cache_dir.display().to_string(),
                "--fsync",
                "always",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fo4depth serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .parse()
            .expect("bound address");
        // Keep draining stdout so the daemon can never block on the pipe.
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Daemon { child, addr }
    }

    fn kill_dash_nine(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
        // Disarm Drop's double-kill.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn sigkilled_daemon_restarts_warm_with_byte_identical_responses() {
    let dir = TempDir::new("fo4depth-kill9").expect("scratch dir");

    let first = Daemon::spawn(dir.path());
    let cold = post(first.addr, "/v1/report", BODY);
    assert_eq!(cold.status, 200, "body: {}", cold.body);
    // `--fsync always`: once counted as appended, the record is durable.
    wait_for_counter(first.addr, &["caches", "persistent", "appended"], CELLS);
    first.kill_dash_nine();

    // Simulate the append the kill interrupted: a torn record prefix.
    let log = dir.path().join(LOG_FILE);
    let mut bytes = std::fs::read(&log).expect("read log");
    let torn = &encode_record(0xFEED_FACE, b"interrupted by SIGKILL")[..13];
    bytes.extend_from_slice(torn);
    std::fs::write(&log, &bytes).expect("tear log");

    let second = Daemon::spawn(dir.path());
    assert_eq!(persisted(second.addr, "recovered_entries"), CELLS);
    assert_eq!(persisted(second.addr, "dropped_bytes"), torn.len() as u64);

    let warm = post(second.addr, "/v1/report", BODY);
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.body, cold.body,
        "restart after kill -9 changed the bytes"
    );
    let m = metrics(second.addr);
    assert_eq!(counter(&m, &["caches", "persistent", "hits"]), CELLS);
    assert_eq!(
        counter(&m, &["caches", "arenas", "misses"]),
        0,
        "all cells came off disk; nothing re-simulated"
    );
}

#[test]
fn cache_stat_breaks_cells_down_by_core_and_benchmark() {
    let dir = TempDir::new("fo4depth-cache-stat").expect("scratch dir");
    {
        let daemon = Daemon::spawn(dir.path());
        let ooo = post(daemon.addr, "/v1/report", BODY);
        assert_eq!(ooo.status, 200, "body: {}", ooo.body);
        let inorder = post(
            daemon.addr,
            "/v1/report",
            r#"{"core":"inorder","benchmarks":["181.mcf"],"points":[6],"warmup":1000,"measure":4000}"#,
        );
        assert_eq!(inorder.status, 200, "body: {}", inorder.body);
        // `--fsync always`: appended counts are durable.
        wait_for_counter(
            daemon.addr,
            &["caches", "persistent", "appended"],
            CELLS + 1,
        );
    }

    let out = Command::new(env!("CARGO_BIN_EXE_fo4depth"))
        .args([
            "cache",
            "stat",
            "--cache-dir",
            &dir.path().display().to_string(),
        ])
        .output()
        .expect("cache stat runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cells by core"), "missing breakdown:\n{text}");
    let line = |needle: &str| {
        text.lines()
            .find(|l| l.trim_start().starts_with(needle))
            .unwrap_or_else(|| panic!("no {needle} line in:\n{text}"))
    };
    assert!(line("ooo").ends_with('2'), "two ooo cells:\n{text}");
    assert!(line("inorder").ends_with('1'), "one inorder cell:\n{text}");
    assert!(line("164.gzip").ends_with('2'), "two gzip cells:\n{text}");
    assert!(line("181.mcf").ends_with('1'), "one mcf cell:\n{text}");
}

#[test]
fn injected_faults_degrade_to_memory_only_with_correct_responses() {
    let dir = TempDir::new("fo4depth-faults").expect("scratch dir");
    let faults = ScriptedFaults::new();
    // First append hits ENOSPC; the rewind then fails too, which must
    // flip the store to degraded (memory-only) rather than crash.
    faults.script_append(Some(InjectedFault::Error(std::io::ErrorKind::StorageFull)));
    faults.script_truncate(Some(std::io::ErrorKind::Other));

    let mut config = StoreConfig::new(dir.path());
    config.fsync = FsyncPolicy::Always;
    let cell_store = Arc::new(CellStore::open(config, faults).expect("open store"));
    let engine = Engine::with_store(4, 16, 4, Some(Arc::clone(&cell_store)));

    let req = SweepRequest::from_json(
        &Json::parse(BODY).expect("request json"),
        &RequestLimits::default(),
    )
    .expect("valid request");
    let served = engine.report(&req);
    cell_store.flush();

    assert_eq!(*served, offline_report(), "fault changed the response");
    let stats = cell_store.stats();
    assert!(stats.degraded, "failed rewind must degrade the store");
    assert_eq!(stats.append_errors, 1);
    assert!(
        stats.appended + stats.shed == CELLS.saturating_sub(1),
        "remaining cells either landed before degradation or were shed"
    );

    // Degraded store: further work is shed, never attempted, never fatal.
    let shed_before = stats.shed;
    let served_again = engine.report(&req);
    assert_eq!(*served_again, *served);
    let wider = SweepRequest::from_json(
        &Json::parse(r#"{"benchmarks":["164.gzip"],"points":[8],"warmup":1000,"measure":4000}"#)
            .expect("json"),
        &RequestLimits::default(),
    )
    .expect("valid request");
    let _ = engine.report(&wider);
    cell_store.flush();
    assert!(
        cell_store.stats().shed > shed_before,
        "new cells under degradation are shed, not persisted"
    );

    // Nothing (or only a valid prefix) reached disk; recovery still works.
    let inspection = store::inspect(dir.path(), true).expect("inspect log");
    assert!(inspection.header_ok);
    assert_eq!(inspection.payload_errors, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_codec_round_trips(
        fp in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let record = encode_record(fp, &payload);
        let (got_fp, got_payload, consumed) =
            decode_record(&record).expect("fresh record decodes");
        prop_assert_eq!(got_fp, fp);
        prop_assert_eq!(got_payload, &payload[..]);
        prop_assert_eq!(consumed, record.len());
    }

    #[test]
    fn truncated_records_fail_cleanly(
        fp in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let record = encode_record(fp, &payload);
        let cut = ((record.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < record.len());
        // Every proper prefix is an error — and a clean one, not a panic.
        prop_assert!(decode_record(&record[..cut]).is_err());
    }

    #[test]
    fn flipped_bits_never_pass_the_crc(
        fp in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut record = encode_record(fp, &payload);
        let pos = (((record.len() as f64) * pos_frac) as usize).min(record.len() - 1);
        record[pos] ^= 1 << bit;
        prop_assert!(
            decode_record(&record).is_err(),
            "single-bit flip at byte {} accepted",
            pos
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Both decoders must return a clean error (or a value) on any
        // input — a panic here is a daemon crash on a corrupt log.
        let _ = decode_record(&bytes);
        let _ = decode_outcome(&bytes);
    }
}
