//! End-to-end tests of the simulation service: a real server on a real
//! socket, driven by a hand-rolled HTTP/1.1 client.
//!
//! The claims under test are the serving subsystem's contract:
//! byte-identity with the offline CLI path, cache hits on repeats,
//! cell reuse across overlapping sweeps, coalescing of concurrent
//! identical requests, load shedding at the bounded queue, and graceful
//! drain on shutdown.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{counter, get, metrics, post, read_response, send, start, Response};
use fo4depth::fo4::Fo4;
use fo4depth::serve::ServeConfig;
use fo4depth::study::report;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::CoreKind;
use fo4depth::util::Json;
use fo4depth::workload::profiles;

#[test]
fn report_is_byte_identical_to_offline_and_repeats_hit_the_cache() {
    let server = start(ServeConfig::default());
    // Large enough a measure window that the miss costs solidly more than
    // an HTTP round trip even when the suite's other servers share the CPU;
    // the 10x hit-speedup assertion below is a ratio of these two.
    let body =
        r#"{"benchmarks":["164.gzip","181.mcf"],"points":[4,6,8],"warmup":4000,"measure":40000}"#;

    let miss_start = Instant::now();
    let first = post(server.addr, "/v1/report", body);
    let miss_elapsed = miss_start.elapsed();
    assert_eq!(first.status, 200, "body: {}", first.body);

    // Best of three: a hit is a hash lookup plus an HTTP round trip, so a
    // single sample is at the mercy of scheduler noise when the whole
    // test suite runs in parallel. The capability being asserted — served
    // from cache, no simulation — is a property of the fastest sample.
    let mut hit_elapsed = Duration::MAX;
    for _ in 0..3 {
        let hit_start = Instant::now();
        let second = post(server.addr, "/v1/report", body);
        hit_elapsed = hit_elapsed.min(hit_start.elapsed());
        assert_eq!(second.status, 200);
        assert_eq!(first.body, second.body, "repeat must be byte-identical");
    }

    // Identical, byte for byte, to what the offline CLI path renders for
    // the same spec (both run through the same grid-cell code).
    let profs = vec![
        profiles::by_name("164.gzip").expect("gzip"),
        profiles::by_name("181.mcf").expect("mcf"),
    ];
    let params = SimParams {
        warmup: 4_000,
        measure: 40_000,
        seed: 1,
    };
    let points: Vec<Fo4> = [4.0, 6.0, 8.0].into_iter().map(Fo4::new).collect();
    let offline = report::generate(CoreKind::OutOfOrder, &profs, &params, &points).pretty();
    assert_eq!(first.body, offline, "served report != offline report");

    // The repeat was answered from the response cache…
    let m = metrics(server.addr);
    assert_eq!(counter(&m, &["caches", "responses", "misses"]), 1);
    assert_eq!(counter(&m, &["caches", "responses", "hits"]), 3);
    // …running exactly the 6 grid cells once…
    assert_eq!(counter(&m, &["caches", "cells", "misses"]), 6);
    // …and at well over the 10x cache-hit speedup the service promises
    // (in practice: hundreds of ms of simulation vs a hash lookup).
    assert!(
        hit_elapsed * 10 <= miss_elapsed,
        "cache hit not fast enough: miss {miss_elapsed:?}, hit {hit_elapsed:?}"
    );
}

#[test]
fn overlapping_sweeps_reuse_shared_cells() {
    let server = start(ServeConfig::default());
    let narrow = r#"{"benchmarks":["164.gzip"],"points":[6],"warmup":1000,"measure":3000}"#;
    let wide = r#"{"benchmarks":["164.gzip"],"points":[6,8],"warmup":1000,"measure":3000}"#;

    assert_eq!(post(server.addr, "/v1/report", narrow).status, 200);
    let m = metrics(server.addr);
    assert_eq!(counter(&m, &["caches", "cells", "misses"]), 1);

    assert_eq!(post(server.addr, "/v1/report", wide).status, 200);
    let m = metrics(server.addr);
    assert_eq!(
        counter(&m, &["caches", "cells", "misses"]),
        2,
        "only the new 8-FO4 cell simulates"
    );
    assert_eq!(
        counter(&m, &["caches", "cells", "hits"]),
        1,
        "the shared 6-FO4 cell is reused"
    );
    assert_eq!(
        counter(&m, &["caches", "arenas", "misses"]),
        1,
        "one trace arena serves both sweeps"
    );
}

/// The scalar-fallback seam: cells warmed one at a time through the scalar
/// `/v1/run` path and cells batch-filled by a later `/v1/report` sweep go
/// through the same cell-granular code and are interchangeable — the
/// mixed-provenance report is still byte-identical to the offline path.
#[test]
fn report_mixes_run_warmed_scalar_cells_with_batched_fills() {
    let server = start(ServeConfig::default());

    // Warm two of the four grid cells through the scalar single-cell
    // endpoint (observed, like the report's cells).
    for (bench, t) in [("164.gzip", 4), ("181.mcf", 8)] {
        let body = format!(
            r#"{{"benchmark":"{bench}","t_useful":{t},"warmup":1000,"measure":3000,"observed":true}}"#
        );
        let r = post(server.addr, "/v1/run", &body);
        assert_eq!(r.status, 200, "body: {}", r.body);
    }
    let m = metrics(server.addr);
    assert_eq!(counter(&m, &["caches", "cells", "misses"]), 2);

    // The superset sweep reuses both warm scalar cells and batch-fills
    // only the two cold ones.
    let body =
        r#"{"benchmarks":["164.gzip","181.mcf"],"points":[4,8],"warmup":1000,"measure":3000}"#;
    let served = post(server.addr, "/v1/report", body);
    assert_eq!(served.status, 200, "body: {}", served.body);
    let m = metrics(server.addr);
    assert_eq!(
        counter(&m, &["caches", "cells", "hits"]),
        2,
        "both run-warmed cells are reused by the sweep"
    );
    assert_eq!(
        counter(&m, &["caches", "cells", "misses"]),
        4,
        "only the cold cells are batch-filled"
    );

    // Mixed provenance must be invisible in the bytes.
    let profs = vec![
        profiles::by_name("164.gzip").expect("gzip"),
        profiles::by_name("181.mcf").expect("mcf"),
    ];
    let params = SimParams {
        warmup: 1_000,
        measure: 3_000,
        seed: 1,
    };
    let points: Vec<Fo4> = [4.0, 8.0].into_iter().map(Fo4::new).collect();
    let offline = report::generate(CoreKind::OutOfOrder, &profs, &params, &points).pretty();
    assert_eq!(
        served.body, offline,
        "mixed scalar/batched cell fills diverged from the offline report"
    );
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_simulation() {
    let server = start(ServeConfig::default());
    let body = r#"{"benchmarks":["164.gzip"],"points":[6],"warmup":1000,"measure":4000}"#;
    let addr = server.addr;

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let r = post(addr, "/v1/report", body);
                assert_eq!(r.status, 200);
                r.body
            })
        })
        .collect();
    let bodies: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .collect();
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "all coalesced responses identical"
    );

    let m = metrics(server.addr);
    assert_eq!(
        counter(&m, &["caches", "responses", "misses"]),
        1,
        "one computation for 4 identical concurrent requests"
    );
    assert_eq!(
        counter(&m, &["caches", "responses", "hits"])
            + counter(&m, &["caches", "responses", "coalesced"]),
        3
    );
    assert_eq!(
        counter(&m, &["caches", "cells", "misses"]),
        1,
        "the single grid cell simulated exactly once"
    );
}

#[test]
fn response_cache_evicts_lru_under_pressure() {
    let server = start(ServeConfig {
        response_entries: 1,
        ..ServeConfig::default()
    });
    let a = r#"{"benchmarks":["164.gzip"],"points":[6],"warmup":500,"measure":2000}"#;
    let b = r#"{"benchmarks":["164.gzip"],"points":[8],"warmup":500,"measure":2000}"#;

    assert_eq!(post(server.addr, "/v1/report", a).status, 200);
    assert_eq!(post(server.addr, "/v1/report", b).status, 200);
    assert_eq!(post(server.addr, "/v1/report", a).status, 200);

    let m = metrics(server.addr);
    assert_eq!(
        counter(&m, &["caches", "responses", "misses"]),
        3,
        "capacity 1: A, B, then A again all miss the response tier"
    );
    assert_eq!(counter(&m, &["caches", "responses", "evictions"]), 2);
    assert_eq!(counter(&m, &["caches", "responses", "entries"]), 1);
    // The cell tier (default capacity) still remembers both points.
    assert_eq!(counter(&m, &["caches", "cells", "misses"]), 2);
    assert_eq!(counter(&m, &["caches", "cells", "hits"]), 1);
}

#[test]
fn bounded_queue_sheds_load_with_429_and_retry_after() {
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });

    // Occupy the only worker: an accepted connection that never sends its
    // request pins the worker in the read until we close it.
    let hold_worker = TcpStream::connect(server.addr).expect("connect");
    std::thread::sleep(Duration::from_millis(300));
    // Fill the queue's single slot the same way.
    let hold_queue = TcpStream::connect(server.addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));

    // The next connection must be shed at admission.
    let shed = get(server.addr, "/healthz");
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));
    let err = shed.json();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("queue_full")
    );

    // Release the held connections so drop's graceful shutdown is quick.
    drop(hold_worker);
    drop(hold_queue);
    let m = metrics(server.addr);
    assert!(counter(&m, &["queue", "shed"]) >= 1);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = start(ServeConfig::default());
    let addr = server.addr;
    let client = std::thread::spawn(move || {
        post(
            addr,
            "/v1/report",
            r#"{"benchmarks":["164.gzip"],"points":[6],"warmup":2000,"measure":8000}"#,
        )
    });
    // Let the request reach the server, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(30));
    server.handle.shutdown();

    let response = client.join().expect("client");
    assert_eq!(
        response.status, 200,
        "in-flight request completes across shutdown"
    );
    let doc = response.json();
    assert!(doc.get("optima").is_some(), "complete body, not truncated");
}

#[test]
fn run_and_sweep_endpoints_answer() {
    let server = start(ServeConfig::default());

    let run = post(
        server.addr,
        "/v1/run",
        r#"{"benchmark":"164.gzip","t_useful":6,"warmup":500,"measure":2000,"observed":true}"#,
    );
    assert_eq!(run.status, 200, "body: {}", run.body);
    let doc = run.json();
    assert_eq!(
        doc.get("benchmark")
            .and_then(|b| b.get("name"))
            .and_then(Json::as_str),
        Some("164.gzip")
    );
    assert!(
        doc.get("benchmark")
            .and_then(|b| b.get("counters"))
            .is_some(),
        "observed run carries stall counters"
    );

    let sweep = post(
        server.addr,
        "/v1/sweep",
        r#"{"benchmarks":["164.gzip"],"points":[6,8],"warmup":500,"measure":2000}"#,
    );
    assert_eq!(sweep.status, 200, "body: {}", sweep.body);
    let doc = sweep.json();
    assert_eq!(
        doc.get("points").and_then(Json::as_arr).map(<[Json]>::len),
        Some(2)
    );
    assert!(doc.get("optima").and_then(|o| o.get("all")).is_some());
}

#[test]
fn malformed_requests_get_structured_errors() {
    let server = start(ServeConfig {
        max_body: 4 * 1024,
        ..ServeConfig::default()
    });

    let code_of = |r: &Response| {
        r.json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| panic!("structured error body, got: {}", r.body))
    };

    let r = get(server.addr, "/nope");
    assert_eq!((r.status, code_of(&r).as_str()), (404, "not_found"));

    let r = get(server.addr, "/v1/report");
    assert_eq!(
        (r.status, code_of(&r).as_str()),
        (405, "method_not_allowed")
    );

    let r = post(server.addr, "/v1/report", "{not json");
    assert_eq!((r.status, code_of(&r).as_str()), (400, "bad_json"));

    let r = post(server.addr, "/v1/report", r#"{"benchmarks":["999.nope"]}"#);
    assert_eq!((r.status, code_of(&r).as_str()), (422, "invalid_request"));

    let r = post(server.addr, "/v1/report", r#"{"bogus_field":1}"#);
    assert_eq!((r.status, code_of(&r).as_str()), (422, "invalid_request"));

    let oversized = format!(
        "POST /v1/report HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        5 * 1024
    );
    let r = send(server.addr, oversized.as_bytes());
    assert_eq!((r.status, code_of(&r).as_str()), (413, "body_too_large"));

    // Errors are visible in /metrics per-endpoint counters.
    let m = metrics(server.addr);
    assert!(counter(&m, &["endpoints", "report", "errors"]) >= 3);
    assert!(counter(&m, &["endpoints", "other", "requests"]) >= 2);
}

#[test]
fn slowloris_connection_is_cut_by_the_total_request_deadline() {
    // A client that trickles one byte at a time stays inside the per-read
    // io_timeout forever; only the whole-request deadline can stop it.
    let server = start(ServeConfig {
        io_timeout: Duration::from_secs(5),
        request_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    });

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client timeout");
    let started = Instant::now();
    let drip = b"GET /healthz HTTP/1.1\r\nhost: test\r\n\r\n";
    for &byte in drip {
        // Once the server gives up on us the write fails (reset); the
        // 408 it wrote first is still waiting in our receive buffer.
        if stream.write_all(&[byte]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let response = read_response(&mut stream);
    assert_eq!(response.status, 408, "body: {}", response.body);
    assert_eq!(
        response
            .json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "deadline fired within the budget, not at the io_timeout"
    );
}
