//! End-to-end guarantees of the adaptive sweep planner and the streaming
//! `/v1/sweep` endpoint.
//!
//! Three claims:
//!
//! 1. **Bitwise equivalence.** An adaptive sweep probes a subset of the
//!    dense grid through the same grid dispatch, so every probed point is
//!    bit-identical to its dense counterpart — and re-densifying the
//!    adaptive result (simulating only the skipped points) reproduces the
//!    full dense sweep byte for byte, across cores × observed ×
//!    pool sizes × lane shapes.
//! 2. **Planner convergence.** For any unimodal merit curve and any knob
//!    setting, the planner converges, never re-probes a point, and never
//!    exceeds the dense budget (proptest).
//! 3. **Streaming transport.** A streamed `/v1/sweep` delivers per-point
//!    chunks that reassemble byte-identically to the buffered body, the
//!    first chunk leaves before the sweep completes, a slow reader only
//!    delays (never corrupts) the stream, and shutdown drains a stream
//!    mid-flight.

mod common;

use std::time::Duration;

use common::{counter, metrics, post, start, StreamingClient};
use fo4depth::exec::Pool;
use fo4depth::serve::ServeConfig;
use fo4depth::study::adaptive::{AdaptiveConfig, AdaptivePlanner};
use fo4depth::study::latency::StructureSet;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{
    adaptive_sweep_arenas, auto_lanes, build_arenas, depth_sweep_spec, standard_points, CoreKind,
    SweepSpec,
};
use fo4depth::util::Json;
use fo4depth::workload::profiles;
use fo4depth_fo4::Fo4;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// 1. Adaptive ≡ dense, bitwise, across the execution matrix
// ---------------------------------------------------------------------------

#[test]
fn redensified_adaptive_sweep_matches_dense_bitwise_everywhere() {
    let profs = vec![
        profiles::by_name("164.gzip").unwrap(),
        profiles::by_name("181.mcf").unwrap(),
    ];
    let params = SimParams {
        warmup: 2_000,
        measure: 6_000,
        seed: 1,
    };
    let structures = StructureSet::alpha_21264();
    let points = standard_points();
    let serial = Pool::new(1);
    let arenas = build_arenas(&profs, &params, &serial);
    let max = fo4depth::exec::default_threads().max(2);

    for core in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        for observed in [false, true] {
            let spec = SweepSpec {
                core,
                profiles: &profs,
                params: &params,
                structures: &structures,
                overhead: Fo4::new(1.8),
                points: &points,
                observed,
            };
            let dense = depth_sweep_spec(&spec, &serial);
            let (best_t, best_bips) = dense.optimum(None);
            for jobs in [1, max] {
                let pool = Pool::new(jobs);
                for lanes in [None, Some(2), Some(auto_lanes(core, points.len()))] {
                    let context =
                        format!("{core:?} observed={observed} jobs={jobs} lanes={lanes:?}");
                    let a = adaptive_sweep_arenas(
                        &spec,
                        &arenas,
                        &pool,
                        lanes,
                        &AdaptiveConfig::default(),
                    );
                    assert!(
                        a.cells_simulated * 2 <= a.cells_dense,
                        "{context}: probed {} of {} cells",
                        a.cells_simulated,
                        a.cells_dense
                    );
                    // The probed subset already contains the dense optimum,
                    // bit for bit (same dispatch, same seed — not "close").
                    assert_eq!(
                        a.sweep.optimum(None),
                        (best_t, best_bips),
                        "{context}: adaptive optimum differs from dense"
                    );
                    // Completing the sweep point-by-point reproduces the
                    // dense sweep exactly.
                    let full = a.densify(&spec, &arenas, &pool, lanes);
                    common::assert_sweeps_bitwise_eq(&context, &dense, &full);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Planner convergence under arbitrary knobs (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any grid size, peak position, knob setting, and core, the
    /// planner converges in a bounded number of rounds, probes each point
    /// at most once (so it never exceeds the dense cell count), and — at
    /// grid-resolution tolerance — lands exactly on the peak.
    #[test]
    fn planner_converges_without_exceeding_the_dense_budget(
        n in 2usize..24,
        peak_sel in 0.0f64..1.0,
        coarse_step in 0usize..6,
        tolerance in prop_oneof![Just(0.0f64), 0.0f64..4.0],
        seed in proptest::option::of(2.0f64..40.0),
        inorder in any::<bool>(),
    ) {
        let points: Vec<Fo4> = (0..n).map(|i| Fo4::new(2.0 + 1.5 * i as f64)).collect();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let peak = (((n - 1) as f64) * peak_sel).round() as usize;
        let core = if inorder { CoreKind::InOrder } else { CoreKind::OutOfOrder };
        let config = AdaptiveConfig { coarse_step, tolerance, seed };
        let mut planner = AdaptivePlanner::new(&points, core, Fo4::new(1.8), &config);
        let mut rounds = 0usize;
        loop {
            let batch = planner.next_batch();
            if batch.is_empty() {
                break;
            }
            rounds += 1;
            prop_assert!(rounds <= n + 2, "planner failed to converge");
            for i in batch {
                #[allow(clippy::cast_precision_loss)]
                planner.record(i, 100.0 - (i as f64 - peak as f64).abs());
            }
        }
        prop_assert!(planner.done());
        let order = planner.probe_order();
        prop_assert!(order.len() <= n, "{} probes exceed the {n}-point dense budget", order.len());
        let unique: std::collections::BTreeSet<&usize> = order.iter().collect();
        prop_assert_eq!(unique.len(), order.len(), "a grid point was probed twice");
        if tolerance == 0.0 {
            prop_assert_eq!(planner.incumbent_index(), Some(peak), "missed the peak");
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Streaming transport
// ---------------------------------------------------------------------------

#[test]
fn streamed_chunks_reassemble_byte_identical_to_the_buffered_body() {
    let server = start(ServeConfig::default());
    for base in [
        r#""benchmarks":["164.gzip"],"points":[4,6,8],"warmup":1000,"measure":3000"#,
        r#""benchmarks":["164.gzip"],"points":[2,4,6,8,10,12],"warmup":1000,"measure":3000,"mode":"adaptive""#,
    ] {
        let mut client = StreamingClient::post(
            server.addr,
            "/v1/sweep",
            &format!("{{{base},\"stream\":true}}"),
        );
        assert_eq!(client.status, 200);
        let chunks = client.drain();
        assert!(
            chunks.len() >= 4,
            "per-point fragments, not one blob: {} chunks",
            chunks.len()
        );

        // The streamed request warmed the response cache for its buffered
        // twin: same bytes, zero additional simulation.
        let m = metrics(server.addr);
        let cells_before = counter(&m, &["caches", "cells", "misses"]);
        let buffered = post(server.addr, "/v1/sweep", &format!("{{{base}}}"));
        assert_eq!(buffered.status, 200);
        assert_eq!(
            chunks.concat(),
            buffered.body,
            "streamed != buffered for {base}"
        );
        let m = metrics(server.addr);
        assert_eq!(
            counter(&m, &["caches", "cells", "misses"]),
            cells_before,
            "buffered twin re-simulated after a streamed sweep"
        );
    }

    let m = metrics(server.addr);
    assert_eq!(counter(&m, &["sweeps", "streamed"]), 2);
    assert!(counter(&m, &["sweeps", "stream_chunks"]) >= 8);
    assert_eq!(counter(&m, &["sweeps", "adaptive"]), 1);
    assert!(counter(&m, &["sweeps", "cells_saved"]) > 0);
}

#[test]
fn first_chunk_arrives_before_the_sweep_completes() {
    let server = start(ServeConfig::default());
    // A 15-point dense grid at a fat measure window: the head fragment
    // must arrive while most of the grid is still unsimulated.
    let mut client = StreamingClient::post(
        server.addr,
        "/v1/sweep",
        r#"{"benchmarks":["164.gzip"],"warmup":4000,"measure":40000,"stream":true}"#,
    );
    let head = client.next_chunk().expect("head fragment");
    assert!(head.contains("\"points\": ["), "head opens the point array");
    assert!(!head.contains("optima"), "head is not the whole body");
    // The stream-finished counter only moves once every fragment has been
    // rendered; holding a data chunk while it still reads 0 proves
    // delivery began before the sweep completed.
    assert_eq!(
        counter(&metrics(server.addr), &["sweeps", "streamed"]),
        0,
        "stream already finished before its first chunk was consumed"
    );
    let mut chunks = vec![head];
    chunks.extend(client.drain());
    let body = chunks.concat();
    let doc = Json::parse(&body).expect("assembled stream parses");
    assert!(
        doc.get("optima").is_some(),
        "terminal summary chunk arrived"
    );
    assert_eq!(
        doc.get("points").and_then(Json::as_arr).map(<[Json]>::len),
        Some(15),
        "every grid point streamed"
    );
    assert_eq!(counter(&metrics(server.addr), &["sweeps", "streamed"]), 1);
}

#[test]
fn slow_reader_gets_the_same_bytes_and_shutdown_drains_mid_stream() {
    let server = start(ServeConfig::default());
    let base = r#""benchmarks":["164.gzip"],"points":[3,5,7,9],"warmup":1000,"measure":3000"#;
    let buffered = post(server.addr, "/v1/sweep", &format!("{{{base}}}"));
    assert_eq!(buffered.status, 200);

    // A reader that stalls between chunks exerts TCP backpressure; the
    // server must simply wait and deliver identical bytes.
    let mut slow = StreamingClient::post(
        server.addr,
        "/v1/sweep",
        &format!("{{{base},\"stream\":true}}"),
    );
    let mut chunks = Vec::new();
    while let Some(c) = slow.next_chunk() {
        chunks.push(c);
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        chunks.concat(),
        buffered.body,
        "slow reader saw different bytes"
    );

    // Shutdown mid-stream: the in-flight stream drains to its terminator.
    let mut client = StreamingClient::post(
        server.addr,
        "/v1/sweep",
        r#"{"benchmarks":["181.mcf"],"warmup":2000,"measure":20000,"stream":true}"#,
    );
    let head = client.next_chunk().expect("head fragment");
    server.handle.shutdown();
    let mut chunks = vec![head];
    chunks.extend(client.drain());
    let doc = Json::parse(&chunks.concat()).expect("drained stream parses");
    assert!(
        doc.get("optima").is_some(),
        "mid-stream shutdown truncated the response"
    );
}
