//! End-to-end tests of the `fo4depth` command-line tool.

use std::process::Command;

fn fo4depth() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fo4depth"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = fo4depth().args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (_, err, ok) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, err, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn unknown_flags_fail_with_exit_2() {
    // Every subcommand rejects leftovers instead of silently ignoring
    // them — a typo'd flag must never run with defaults.
    for args in [
        &["report", "--bogus"][..],
        &["sweep", "--meausre", "10"],
        &["perf", "--quik"],
        &["serve", "--port", "1"],
        &["bench", "164.gzip", "--warmpu", "10"],
        &["table3", "--verbose"],
        &["experiments", "stray"],
    ] {
        let out = fo4depth().args(args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown option") || err.contains("unexpected argument"),
            "args {args:?} gave: {err}"
        );
    }
}

#[test]
fn missing_and_malformed_option_values_fail_with_exit_2() {
    let out = fo4depth()
        .args(["report", "--points"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--points needs a value"));

    let out = fo4depth()
        .args(["sweep", "--warmup", "lots"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad value for --warmup: lots"));
}

#[test]
fn table3_prints_all_rows() {
    let (out, _, ok) = run(&["table3"]);
    assert!(ok);
    for row in ["DL1", "Issue window", "FP sqrt", "Alpha"] {
        assert!(out.contains(row), "missing {row} in:\n{out}");
    }
}

#[test]
fn experiments_lists_the_registry() {
    let (out, _, ok) = run(&["experiments"]);
    assert!(ok);
    assert!(out.contains("Figure 5"));
    assert!(out.contains("Appendix A"));
}

#[test]
fn bench_runs_one_benchmark() {
    let (out, _, ok) = run(&[
        "bench",
        "164.gzip",
        "--t-useful",
        "6",
        "--warmup",
        "1000",
        "--measure",
        "4000",
    ]);
    assert!(ok, "bench failed: {out}");
    assert!(out.contains("out-of-order"));
    assert!(out.contains("IPC"));
}

#[test]
fn adaptive_sweep_prints_probe_summary_and_rejects_bad_knobs() {
    let (out, err, ok) = run(&[
        "sweep",
        "--bench",
        "164.gzip",
        "--quick",
        "--sweep-mode",
        "adaptive",
        "--batch-lanes",
        "auto",
    ]);
    assert!(ok, "adaptive sweep failed: {err}");
    // The search summary goes to stderr so piped CSV/JSON stays clean.
    assert!(err.contains("adaptive: probed"), "stderr: {err}");
    assert!(err.contains("saved"), "stderr: {err}");
    assert!(out.contains("t_useful"), "stdout: {out}");

    let (_, err, ok) = run(&["sweep", "--sweep-mode", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown sweep mode"), "stderr: {err}");

    let (_, err, ok) = run(&["sweep", "--batch-lanes", "-3"]);
    assert!(!ok);
    assert!(
        err.contains("--batch-lanes") || err.contains("unknown option"),
        "stderr: {err}"
    );
}

#[test]
fn bench_rejects_unknown_benchmark() {
    let (_, err, ok) = run(&["bench", "999.nope"]);
    assert!(!ok);
    assert!(err.contains("unknown benchmark"));
}

#[test]
fn floorplan_reports_areas() {
    let (out, _, ok) = run(&["floorplan"]);
    assert!(ok);
    assert!(out.contains("mm2"));
    assert!(out.contains("front-end transport"));
}

#[test]
fn record_then_replay_round_trips() {
    let dir = std::env::temp_dir().join(format!("fo4depth-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("t.trace");
    let trace_str = trace.to_str().expect("utf-8 path");

    let (_, err, ok) = run(&["record", "300.twolf", "20000", trace_str]);
    assert!(ok, "record failed: {err}");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert_eq!(text.lines().count(), 20000);

    let (out, err, ok) = run(&["replay", trace_str, "--t-useful", "6"]);
    assert!(ok, "replay failed: {err}");
    assert!(out.contains("IPC"), "no IPC in: {out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_rejects_missing_and_short_files() {
    let (_, err, ok) = run(&["replay", "/nonexistent/x.trace"]);
    assert!(!ok);
    assert!(err.contains("cannot open"));

    let dir = std::env::temp_dir().join(format!("fo4depth-cli-short-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let short = dir.join("short.trace");
    std::fs::write(&short, "120000|nop|-|-|-|-|-|-\n").expect("write");
    let (_, err, ok) = run(&["replay", short.to_str().expect("utf-8")]);
    assert!(!ok);
    assert!(err.contains("too short"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_quick_emits_exact_deterministic_json() {
    let args = &[
        "report",
        "--quick",
        "--bench",
        "164.gzip,171.swim",
        "--points",
        "6,8",
    ];
    let (out, err, ok) = run(args);
    assert!(ok, "report failed: {err}");
    let (out2, _, ok2) = run(args);
    assert!(ok2);
    assert_eq!(out, out2, "same-seed reports must be byte-identical");

    let doc = fo4depth::util::Json::parse(&out).expect("report is valid JSON");
    assert_eq!(
        doc.get("schema_version")
            .and_then(fo4depth::util::Json::as_u64),
        Some(1)
    );
    let points = doc
        .get("points")
        .and_then(fo4depth::util::Json::as_arr)
        .expect("points array");
    assert_eq!(points.len(), 2);
    for point in points {
        let benches = point
            .get("benchmarks")
            .and_then(fo4depth::util::Json::as_arr)
            .expect("benchmarks");
        assert_eq!(benches.len(), 2);
        for b in benches {
            // The slot identity, checked from the serialized document alone:
            // cycles × width == useful_slots + Σ stall_slots.
            let c = b.get("counters").expect("counters present");
            let u = |j: Option<&fo4depth::util::Json>| {
                j.and_then(fo4depth::util::Json::as_u64).expect("uint")
            };
            let cycles = u(c.get("cycles"));
            let width = u(c.get("width"));
            let useful = u(c.get("useful_slots"));
            let fo4depth::util::Json::Obj(stalls) = c.get("stall_slots").expect("stalls") else {
                panic!("stall_slots must be an object");
            };
            let stalled: u64 = stalls.iter().map(|(_, v)| u(Some(v))).sum();
            assert_eq!(
                cycles * width,
                useful + stalled,
                "CPI identity broken in {} report",
                b.get("name")
                    .and_then(fo4depth::util::Json::as_str)
                    .unwrap_or("?")
            );
        }
    }
    assert!(doc.get("optima").is_some());
}

#[test]
fn sweep_csv_emits_parseable_output() {
    let (out, _, ok) = run(&[
        "sweep",
        "--bench",
        "164.gzip",
        "--csv",
        "--warmup",
        "500",
        "--measure",
        "2000",
    ]);
    assert!(ok);
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].starts_with("t_useful,period_ps"));
    assert_eq!(lines.len(), 16, "header + 15 clock points");
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), lines[0].split(',').count());
        for f in fields {
            f.parse::<f64>().expect("numeric CSV field");
        }
    }
}
