//! Shared harness for the end-to-end service tests: a real server on an
//! ephemeral port (optionally backed by a per-test persistent cache
//! directory), plus a hand-rolled HTTP/1.1 client.
//!
//! Hygiene rules the harness enforces so `cargo test`'s parallel runners
//! cannot interfere with each other:
//!
//! * every server binds `127.0.0.1:0` — the kernel picks a free port;
//! * every cache-backed server gets its own unique scratch directory
//!   ([`fo4depth::util::TempDir`]), removed when the test's server drops;
//! * drop order is server-then-directory, so the daemon's shutdown flush
//!   never races the cleanup.

// Each integration-test binary compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use fo4depth::serve::{ServeConfig, Server, ShutdownHandle};
use fo4depth::util::{Json, TempDir};

/// A live server on an ephemeral port, shut down (gracefully) on drop.
/// When started with [`start_with_cache_dir`], also owns the cache
/// scratch directory, removed after the server has fully drained.
pub struct TestServer {
    pub addr: SocketAddr,
    pub handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Dropped after the shutdown in `Drop` runs, never before.
    cache_dir: Option<TempDir>,
}

impl TestServer {
    /// The persistent cache directory, when this server has one.
    pub fn cache_path(&self) -> &Path {
        self.cache_dir
            .as_ref()
            .expect("server was started with a cache dir")
            .path()
    }

    /// Releases ownership of the cache directory (so a later server can
    /// reuse it) while still shutting this server down on drop.
    pub fn take_cache_dir(&mut self) -> TempDir {
        self.cache_dir
            .take()
            .expect("server was started with a cache dir")
    }
}

/// Starts a server on an ephemeral port.
pub fn start(mut config: ServeConfig) -> TestServer {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("server runs"));
    TestServer {
        addr,
        handle,
        thread: Some(thread),
        cache_dir: None,
    }
}

/// Starts a server with a fresh, unique persistent cache directory.
pub fn start_with_cache_dir(mut config: ServeConfig) -> TestServer {
    let dir = TempDir::new("fo4depth-serve-test").expect("test cache dir");
    config.cache_dir = Some(dir.path().to_path_buf());
    let mut server = start(config);
    server.cache_dir = Some(dir);
    server
}

/// Starts a server on an existing cache directory (warm restart), taking
/// ownership so the directory is removed when this server drops.
pub fn restart_on_cache_dir(mut config: ServeConfig, dir: TempDir) -> TestServer {
    config.cache_dir = Some(dir.path().to_path_buf());
    let mut server = start(config);
    server.cache_dir = Some(dir);
    server
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread joins");
        }
        // `cache_dir` (if still owned) drops here, after the drain.
    }
}

pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Json {
        Json::parse(&self.body).expect("response body is valid JSON")
    }
}

/// Sends raw request bytes and reads the (connection-close delimited)
/// response.
pub fn send(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("client timeout");
    stream.write_all(raw).expect("send request");
    read_response(&mut stream)
}

/// Reads one connection-close delimited response off an open stream.
pub fn read_response(stream: &mut TcpStream) -> Response {
    let mut buf = Vec::new();
    // A shed connection may be reset once the response is written; what
    // was read before the reset is still the complete response.
    if let Err(e) = stream.read_to_end(&mut buf) {
        assert!(
            buf.windows(4).any(|w| w == b"\r\n\r\n"),
            "connection failed before a complete response arrived: {e}"
        );
    }
    let text = String::from_utf8(buf).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

pub fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    send(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

pub fn get(addr: SocketAddr, path: &str) -> Response {
    send(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: test\r\n\r\n").as_bytes(),
    )
}

pub fn metrics(addr: SocketAddr) -> Json {
    let r = get(addr, "/metrics");
    assert_eq!(r.status, 200);
    r.json()
}

pub fn counter(doc: &Json, path: &[&str]) -> u64 {
    let mut node = doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    node.as_u64().expect("integer counter")
}

/// Polls `/metrics` until `path` reaches at least `target` (write-behind
/// persistence means a response can arrive before its cells are on
/// disk). Panics after ~5 s.
pub fn wait_for_counter(addr: SocketAddr, path: &[&str], target: u64) -> u64 {
    for _ in 0..200 {
        let value = counter(&metrics(addr), path);
        if value >= target {
            return value;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("counter {path:?} never reached {target}");
}
