//! Shared harness for the end-to-end service tests: a real server on an
//! ephemeral port (optionally backed by a per-test persistent cache
//! directory), plus a hand-rolled HTTP/1.1 client.
//!
//! Hygiene rules the harness enforces so `cargo test`'s parallel runners
//! cannot interfere with each other:
//!
//! * every server binds `127.0.0.1:0` — the kernel picks a free port;
//! * every cache-backed server gets its own unique scratch directory
//!   ([`fo4depth::util::TempDir`]), removed when the test's server drops;
//! * drop order is server-then-directory, so the daemon's shutdown flush
//!   never races the cleanup.

// Each integration-test binary compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code, unused_imports)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use fo4depth::serve::{ServeConfig, Server, ShutdownHandle};
use fo4depth::util::{Json, TempDir};

/// A live server on an ephemeral port, shut down (gracefully) on drop.
/// When started with [`start_with_cache_dir`], also owns the cache
/// scratch directory, removed after the server has fully drained.
pub struct TestServer {
    pub addr: SocketAddr,
    pub handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Dropped after the shutdown in `Drop` runs, never before.
    cache_dir: Option<TempDir>,
}

impl TestServer {
    /// The persistent cache directory, when this server has one.
    pub fn cache_path(&self) -> &Path {
        self.cache_dir
            .as_ref()
            .expect("server was started with a cache dir")
            .path()
    }

    /// Releases ownership of the cache directory (so a later server can
    /// reuse it) while still shutting this server down on drop.
    pub fn take_cache_dir(&mut self) -> TempDir {
        self.cache_dir
            .take()
            .expect("server was started with a cache dir")
    }
}

/// Starts a server on an ephemeral port.
pub fn start(mut config: ServeConfig) -> TestServer {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("server runs"));
    TestServer {
        addr,
        handle,
        thread: Some(thread),
        cache_dir: None,
    }
}

/// Starts a server with a fresh, unique persistent cache directory.
pub fn start_with_cache_dir(mut config: ServeConfig) -> TestServer {
    let dir = TempDir::new("fo4depth-serve-test").expect("test cache dir");
    config.cache_dir = Some(dir.path().to_path_buf());
    let mut server = start(config);
    server.cache_dir = Some(dir);
    server
}

/// Starts a server on an existing cache directory (warm restart), taking
/// ownership so the directory is removed when this server drops.
pub fn restart_on_cache_dir(mut config: ServeConfig, dir: TempDir) -> TestServer {
    config.cache_dir = Some(dir.path().to_path_buf());
    let mut server = start(config);
    server.cache_dir = Some(dir);
    server
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread joins");
        }
        // `cache_dir` (if still owned) drops here, after the drain.
    }
}

pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Json {
        Json::parse(&self.body).expect("response body is valid JSON")
    }
}

/// Sends raw request bytes and reads the (connection-close delimited)
/// response.
pub fn send(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("client timeout");
    stream.write_all(raw).expect("send request");
    read_response(&mut stream)
}

/// Reads one connection-close delimited response off an open stream.
pub fn read_response(stream: &mut TcpStream) -> Response {
    let mut buf = Vec::new();
    // A shed connection may be reset once the response is written; what
    // was read before the reset is still the complete response.
    if let Err(e) = stream.read_to_end(&mut buf) {
        assert!(
            buf.windows(4).any(|w| w == b"\r\n\r\n"),
            "connection failed before a complete response arrived: {e}"
        );
    }
    let text = String::from_utf8(buf).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

pub fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    send(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

pub fn get(addr: SocketAddr, path: &str) -> Response {
    send(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: test\r\n\r\n").as_bytes(),
    )
}

pub fn metrics(addr: SocketAddr) -> Json {
    let r = get(addr, "/metrics");
    assert_eq!(r.status, 200);
    r.json()
}

pub fn counter(doc: &Json, path: &[&str]) -> u64 {
    let mut node = doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    node.as_u64().expect("integer counter")
}

/// Polls `/metrics` until `path` reaches at least `target` (write-behind
/// persistence means a response can arrive before its cells are on
/// disk). Panics after ~5 s.
pub fn wait_for_counter(addr: SocketAddr, path: &[&str], target: u64) -> u64 {
    for _ in 0..200 {
        let value = counter(&metrics(addr), path);
        if value >= target {
            return value;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("counter {path:?} never reached {target}");
}

// ---------------------------------------------------------------------------
// Chunked (streamed) responses
// ---------------------------------------------------------------------------

// The incremental chunked-response client lives with the serving crate now
// (the router's upstream client grew out of it); tests keep their old name.
pub use fo4depth::serve::client::StreamingClient;

// ---------------------------------------------------------------------------
// Bitwise sweep equivalence
// ---------------------------------------------------------------------------

use fo4depth::study::sim::BenchOutcome;
use fo4depth::study::sweep::DepthSweep;
use fo4depth_pipeline::StallCause;

/// Names every field on which two outcomes differ, in declaration order —
/// the diagnostic backbone of [`assert_outcomes_bitwise_eq`].
fn outcome_divergences(a: &BenchOutcome, b: &BenchOutcome) -> Vec<String> {
    fn record(diffs: &mut Vec<String>, name: &str, ne: bool) {
        if ne {
            diffs.push(name.to_string());
        }
    }
    let mut diffs = Vec::new();
    let mut field = |name: &str, ne: bool| record(&mut diffs, name, ne);
    field("name", a.name != b.name);
    field("class", a.class != b.class);
    let (r, s) = (&a.result, &b.result);
    field("result.instructions", r.instructions != s.instructions);
    field("result.cycles", r.cycles != s.cycles);
    field("result.branches", r.branches != s.branches);
    field("result.mispredicts", r.mispredicts != s.mispredicts);
    field("result.l1", r.l1 != s.l1);
    field("result.l2", r.l2 != s.l2);
    field("result.forwards", r.forwards != s.forwards);
    field("result.loads", r.loads != s.loads);
    match (&a.counters, &b.counters) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => field("counters presence", true),
        (Some(c), Some(d)) => {
            field("counters.width", c.width != d.width);
            field("counters.cycles", c.cycles != d.cycles);
            field("counters.useful_slots", c.useful_slots != d.useful_slots);
            for cause in StallCause::ALL {
                field(
                    &format!("counters.stall_slots[{}]", cause.key()),
                    c.stalls(cause) != d.stalls(cause),
                );
            }
            field(
                "counters.window_occupancy",
                c.window_occupancy != d.window_occupancy,
            );
            field("counters.rob_occupancy", c.rob_occupancy != d.rob_occupancy);
            field("counters.lsq_occupancy", c.lsq_occupancy != d.lsq_occupancy);
            field(
                "counters.dispatch_blocked_rob",
                c.dispatch_blocked_rob != d.dispatch_blocked_rob,
            );
            field(
                "counters.dispatch_blocked_window",
                c.dispatch_blocked_window != d.dispatch_blocked_window,
            );
            field(
                "counters.dispatch_blocked_lsq",
                c.dispatch_blocked_lsq != d.dispatch_blocked_lsq,
            );
            field(
                "counters.dispatch_blocked_rename",
                c.dispatch_blocked_rename != d.dispatch_blocked_rename,
            );
            field("counters.btb", c.btb != d.btb);
        }
    }
    diffs
}

/// Asserts `candidate` reproduces `reference` bit for bit, outcome by
/// outcome. On divergence, panics naming the first differing benchmark,
/// every differing field, and the cycle-count delta — enough to tell a
/// scheduling bug (cycles drift) from an accounting bug (counters only).
pub fn assert_outcomes_bitwise_eq(
    context: &str,
    reference: &[BenchOutcome],
    candidate: &[BenchOutcome],
) {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "{context}: outcome count mismatch"
    );
    for (i, (r, c)) in reference.iter().zip(candidate).enumerate() {
        let diffs = outcome_divergences(r, c);
        assert!(
            diffs.is_empty(),
            "{context}: first divergence at outcome {i} (benchmark {}): \
             fields [{}], cycle delta {:+}",
            r.name,
            diffs.join(", "),
            c.result.cycles as i128 - r.result.cycles as i128,
        );
    }
}

/// Asserts two sweeps are bit-identical, localizing the first divergence to
/// its `(clock point × benchmark)` cell before delegating the field-level
/// diagnostic to [`assert_outcomes_bitwise_eq`].
pub fn assert_sweeps_bitwise_eq(context: &str, reference: &DepthSweep, candidate: &DepthSweep) {
    assert_eq!(reference.core, candidate.core, "{context}: core mismatch");
    assert_eq!(
        reference.overhead, candidate.overhead,
        "{context}: overhead mismatch"
    );
    assert_eq!(
        reference.points.len(),
        candidate.points.len(),
        "{context}: point count mismatch"
    );
    for (pi, (r, c)) in reference.points.iter().zip(&candidate.points).enumerate() {
        assert_eq!(
            r.t_useful, c.t_useful,
            "{context}: point {pi} t_useful mismatch"
        );
        assert_eq!(
            r.period_ps, c.period_ps,
            "{context}: point {pi} period mismatch"
        );
        assert_outcomes_bitwise_eq(
            &format!("{context}, point {pi} (t_useful {})", r.t_useful),
            &r.outcomes,
            &c.outcomes,
        );
    }
    // The walk above localizes any divergence; this full-struct equality
    // (plus the rendered CSV, the artifact the study ships) is the backstop
    // that no field escaped the walk.
    assert_eq!(reference, candidate, "{context}: sweeps differ");
    assert_eq!(
        fo4depth::study::render::sweep_csv(reference),
        fo4depth::study::render::sweep_csv(candidate),
        "{context}: rendered CSV bytes differ"
    );
}
