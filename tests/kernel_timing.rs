//! Analytic timing verification: the simulator's steady-state IPC on the
//! closed-form kernels must match the timing rules it claims to implement.

use fo4depth::pipeline::{CoreConfig, InOrderCore, OutOfOrderCore};
use fo4depth::workload::kernels;

fn ooo_ipc<I: Iterator<Item = fo4depth::isa::Instruction>>(cfg: &CoreConfig, trace: I) -> f64 {
    let mut core = OutOfOrderCore::new(cfg.clone(), trace);
    core.run(2_000);
    core.run(10_000).ipc()
}

#[test]
fn dependent_chain_runs_at_unit_ipc() {
    // Int-ALU latency 1 at the Alpha point, back-to-back wakeup: IPC → 1.
    let ipc = ooo_ipc(&CoreConfig::alpha_like(), kernels::dependent_chain());
    assert!((0.93..=1.001).contains(&ipc), "chain IPC {ipc}");
}

#[test]
fn dependent_chain_scales_with_alu_latency() {
    // Doubling the ALU latency must halve chain IPC.
    let mut cfg = CoreConfig::alpha_like();
    cfg.exec.int_alu = 2;
    let ipc = ooo_ipc(&cfg, kernels::dependent_chain());
    assert!((0.45..=0.52).contains(&ipc), "2-cycle chain IPC {ipc}");
}

#[test]
fn independent_alu_saturates_integer_width() {
    // 4 integer units: IPC → 4.
    let ipc = ooo_ipc(&CoreConfig::alpha_like(), kernels::independent_alu());
    assert!((3.5..=4.001).contains(&ipc), "independent IPC {ipc}");
}

#[test]
fn pointer_chase_runs_at_load_use_reciprocal() {
    // L1 hit latency 3 at the Alpha point: serial loads → IPC 1/3.
    let ipc = ooo_ipc(&CoreConfig::alpha_like(), kernels::pointer_chase());
    let expected = 1.0 / 3.0;
    assert!(
        (ipc - expected).abs() < 0.04,
        "pointer-chase IPC {ipc}, expected ≈ {expected}"
    );

    // And it tracks the DL1 latency exactly.
    let mut cfg = CoreConfig::alpha_like();
    cfg.hierarchy.l1_latency = 6;
    let ipc6 = ooo_ipc(&cfg, kernels::pointer_chase());
    assert!(
        (ipc6 - 1.0 / 6.0).abs() < 0.02,
        "6-cycle pointer-chase IPC {ipc6}"
    );
}

#[test]
fn fp_chain_runs_at_fp_add_reciprocal() {
    // FP add latency 4: IPC → 1/4.
    let ipc = ooo_ipc(&CoreConfig::alpha_like(), kernels::fp_chain());
    assert!((ipc - 0.25).abs() < 0.03, "fp-chain IPC {ipc}");
}

#[test]
fn interleaved_chains_scale_linearly_until_width() {
    let one = ooo_ipc(&CoreConfig::alpha_like(), kernels::interleaved_chains(1));
    let two = ooo_ipc(&CoreConfig::alpha_like(), kernels::interleaved_chains(2));
    let four = ooo_ipc(&CoreConfig::alpha_like(), kernels::interleaved_chains(4));
    let eight = ooo_ipc(&CoreConfig::alpha_like(), kernels::interleaved_chains(8));
    assert!((two / one - 2.0).abs() < 0.15, "2 chains: {one} → {two}");
    assert!((four / one - 4.0).abs() < 0.3, "4 chains: {one} → {four}");
    // Beyond the 4-wide integer port budget, no further scaling.
    assert!(eight < four * 1.15, "8 chains {eight} vs 4 chains {four}");
}

#[test]
fn wakeup_loop_gates_the_chain_not_the_long_ops() {
    // max(exec, wakeup): a 3-cycle wakeup loop slows a 1-cycle ALU chain to
    // one instruction per 3 cycles, but leaves the 4-cycle FP chain alone.
    let mut cfg = CoreConfig::alpha_like();
    cfg.window = fo4depth::pipeline::WindowConfig::Conventional {
        capacity: 32,
        wakeup: 3,
    };
    let alu = ooo_ipc(&cfg, kernels::dependent_chain());
    assert!(
        (alu - 1.0 / 3.0).abs() < 0.03,
        "ALU chain at wakeup 3: {alu}"
    );
    let fp = ooo_ipc(&cfg, kernels::fp_chain());
    assert!((fp - 0.25).abs() < 0.03, "FP chain at wakeup 3: {fp}");
}

#[test]
fn tight_loop_pays_the_taken_bubble() {
    // A 7-instruction loop body + branch with taken_bubble = 1: each
    // iteration needs ≥ 2 fetch cycles for 8 instructions (4-wide) plus the
    // re-steer bubble → IPC ≈ 8/3.
    let ipc = ooo_ipc(&CoreConfig::alpha_like(), kernels::tight_loop(7));
    assert!((2.2..=2.9).contains(&ipc), "tight-loop IPC {ipc}");

    // Removing the bubble lifts throughput toward 8/2 = 4.
    let mut cfg = CoreConfig::alpha_like();
    cfg.taken_bubble = 0;
    let no_bubble = ooo_ipc(&cfg, kernels::tight_loop(7));
    assert!(no_bubble > ipc * 1.15, "{no_bubble} vs {ipc}");
}

#[test]
fn inorder_matches_ooo_on_serial_chains() {
    // A single dependence chain has no scheduling freedom: both cores run
    // it at the same rate.
    let cfg = CoreConfig::alpha_like();
    let mut ino = InOrderCore::new(cfg.clone(), kernels::dependent_chain());
    ino.run(1_000);
    let in_ipc = ino.run(6_000).ipc();
    let oo_ipc = ooo_ipc(&cfg, kernels::dependent_chain());
    assert!(
        (in_ipc - oo_ipc).abs() < 0.08,
        "in-order {in_ipc} vs OoO {oo_ipc}"
    );
}
