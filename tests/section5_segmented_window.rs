//! §5 reproduction: the segmented instruction window (Figures 10–12).

use fo4depth::study::segmented::{select_eval, window_depth_sweep};
use fo4depth::study::sim::SimParams;
use fo4depth::workload::{profiles, BenchClass};

fn params() -> SimParams {
    SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    }
}

#[test]
fn figure11_depth_sweep_losses() {
    let profs = profiles::all();
    let curves = window_depth_sweep(&profs, &params(), &[1, 2, 4, 6, 8, 10]);

    let int = curves
        .iter()
        .find(|c| c.class == BenchClass::Integer)
        .expect("integer curve");
    let vec = curves
        .iter()
        .find(|c| c.class == BenchClass::VectorFp)
        .expect("vector curve");

    // "IPC of integer and vector benchmarks remain unchanged until the
    // window is pipelined to a depth of 4 stages" — allow a few percent.
    let int_at4 = int.relative_ipc.iter().find(|p| p.0 == 4).expect("4").1;
    assert!(int_at4 > 0.93, "integer IPC at 4 stages {int_at4}");

    // "overall decrease ... from 1 to 10 stages is approximately 11%" for
    // integer and 5% for FP. Our losses are smaller (the collapsing model
    // compacts fully every cycle and window occupancies run lower than
    // SPEC's — see EXPERIMENTS.md); the assertions pin the *shape*: a
    // clearly nonzero integer loss, a smaller FP loss, and the ordering.
    let int_loss = 1.0 - int.at_max_depth();
    let vec_loss = 1.0 - vec.at_max_depth();
    assert!(
        (0.015..0.25).contains(&int_loss),
        "integer loss at 10 stages {int_loss} (paper 0.11)"
    );
    assert!(
        (-0.01..0.12).contains(&vec_loss),
        "vector loss at 10 stages {vec_loss} (paper 0.05)"
    );
    assert!(
        int_loss > vec_loss,
        "integer ({int_loss}) must lose more than vector ({vec_loss})"
    );

    // Monotone (within noise): deeper staging never helps.
    for c in &curves {
        for w in c.relative_ipc.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 0.02,
                "{:?} gained IPC from deeper staging: {:?}",
                c.class,
                c.relative_ipc
            );
        }
    }
}

#[test]
fn figure12_preselection_losses() {
    let profs = profiles::all();
    let evals = select_eval(&profs, &params());

    let int = evals
        .iter()
        .find(|e| e.class == BenchClass::Integer)
        .expect("integer eval");
    let vec = evals
        .iter()
        .find(|e| e.class == BenchClass::VectorFp)
        .expect("vector eval");

    // Paper: integer −4%, FP −1% vs a single-cycle 32-entry window.
    assert!(
        (0.0..0.12).contains(&int.loss()),
        "integer pre-selection loss {} (paper 0.04)",
        int.loss()
    );
    assert!(
        (-0.02..0.06).contains(&vec.loss()),
        "vector pre-selection loss {} (paper 0.01)",
        vec.loss()
    );
    assert!(
        int.loss() >= vec.loss() - 0.01,
        "integer should lose at least as much as vector"
    );
}
