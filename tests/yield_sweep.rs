//! End-to-end tests of the yield subsystem: determinism of the Monte
//! Carlo sweep across execution topologies, agreement between the
//! variance-propagation fast path and the Monte Carlo verifier, and the
//! `/v1/yield` serving contract (routed byte-identity, streamed ==
//! buffered, cache-tier reuse across a restart, failover while a yield
//! sweep is in flight, and structured rejection of impossible
//! distributions).

mod common;

use common::{
    counter, metrics, post, restart_on_cache_dir, start, start_with_cache_dir, wait_for_counter,
    StreamingClient, TestServer,
};
use fo4depth::exec::Pool;
use fo4depth::serve::ServeConfig;
use fo4depth::study::latency::StructureSet;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{standard_points, CoreKind, SweepSpec};
use fo4depth::study::yield_sweep::{yield_sweep_spec, YieldSweep};
use fo4depth::util::Json;
use fo4depth::variation::VariationSpec;
use fo4depth::workload::profiles;
use fo4depth_fo4::Fo4;

/// Starts a router fronting the given shards, on its own ephemeral port.
fn start_router(shards: &[&TestServer]) -> TestServer {
    let config = ServeConfig {
        shards: shards.iter().map(|s| s.addr.to_string()).collect(),
        ..ServeConfig::default()
    };
    start(config)
}

/// The error code of a structured error response.
fn error_code(response: &common::Response) -> String {
    response
        .json()
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("structured error code")
        .to_string()
}

// ---------------------------------------------------------------------------
// Library-level determinism and model agreement
// ---------------------------------------------------------------------------

/// Runs the reference yield sweep (2 benchmarks, 3 points, 12 dies) on the
/// given pool with the given lane cap.
fn small_yield(pool: &Pool, lanes: Option<usize>) -> YieldSweep {
    let profs = vec![
        profiles::by_name("164.gzip").unwrap(),
        profiles::by_name("181.mcf").unwrap(),
    ];
    let params = SimParams {
        warmup: 1_000,
        measure: 3_000,
        seed: 1,
    };
    let structures = StructureSet::alpha_21264();
    let points: Vec<Fo4> = [3.0, 6.0, 12.0].into_iter().map(Fo4::new).collect();
    let spec = SweepSpec {
        core: CoreKind::OutOfOrder,
        profiles: &profs,
        params: &params,
        structures: &structures,
        overhead: Fo4::new(1.8),
        points: &points,
        observed: false,
    };
    let mut variation = VariationSpec::new(7);
    variation.samples = 12;
    yield_sweep_spec(&spec, variation, pool, lanes).expect("valid variation spec")
}

/// The same seed must produce the same dies and the same sweep — bit for
/// bit — on a serial pool, a 2-thread pool, a machine-width pool, and
/// under any lane batching. Parallelism and batching are scheduling
/// concerns; they must never leak into sampled outcomes.
#[test]
fn yield_sweep_is_pool_and_lane_invariant() {
    let max = fo4depth::exec::default_threads().max(2);
    let reference = small_yield(&Pool::new(1), None);
    for (threads, lanes) in [(1, Some(2)), (2, None), (2, Some(3)), (max, Some(2))] {
        let candidate = small_yield(&Pool::new(threads), lanes);
        common::assert_sweeps_bitwise_eq(
            &format!("yield nominal, pool {threads} lanes {lanes:?}"),
            &reference.nominal,
            &candidate.nominal,
        );
        assert_eq!(
            reference, candidate,
            "yield sweep diverged at pool {threads} lanes {lanes:?}"
        );
    }
}

/// The analytic fast path must agree with the Monte Carlo verifier on the
/// standard grid: yields within a loose per-point band (the MC estimate is
/// binomial at 128 dies) and a yield-weighted optimum within two grid
/// steps. Both must show the paper-level effect — deep pipelines (small
/// `t_useful`) lose yield, so the yield-aware optimum is at least as
/// shallow as the nominal one.
#[test]
fn fast_path_agrees_with_monte_carlo_on_the_standard_grid() {
    let profs = vec![
        profiles::by_name("164.gzip").unwrap(),
        profiles::by_name("181.mcf").unwrap(),
    ];
    let params = SimParams {
        warmup: 400,
        measure: 1_500,
        seed: 1,
    };
    let structures = StructureSet::alpha_21264();
    let points = standard_points();
    let spec = SweepSpec {
        core: CoreKind::OutOfOrder,
        profiles: &profs,
        params: &params,
        structures: &structures,
        overhead: Fo4::new(1.8),
        points: &points,
        observed: false,
    };
    let variation = VariationSpec::new(1);
    let pool = fo4depth::exec::global();
    let sweep = yield_sweep_spec(&spec, variation, pool, None).expect("valid variation spec");

    let agreement = sweep.agreement();
    assert!(
        agreement.max_yield_abs_err < 0.15,
        "fast path drifted from MC: max |err| {}",
        agreement.max_yield_abs_err
    );
    assert!(
        agreement.optimum_step_delta.abs() <= 3,
        "optima {} grid steps apart",
        agreement.optimum_step_delta
    );
    // The curve is flat near its top, so the argmax alone is a noisy
    // comparison: the binding check is that the point the fast path picks
    // is near-optimal under the Monte Carlo surface.
    let (fast_t, _) = sweep.yield_optimum_fast();
    let mc_best = sweep
        .points
        .iter()
        .map(|p| p.ywbips_mc)
        .fold(f64::MIN, f64::max);
    let at_fast = sweep
        .points
        .iter()
        .find(|p| p.t_useful == fast_t)
        .expect("fast optimum is on the grid")
        .ywbips_mc;
    assert!(
        at_fast >= 0.9 * mc_best,
        "fast-path optimum at {fast_t} FO4 scores {at_fast} vs MC best {mc_best}"
    );

    let first = sweep.points.first().expect("non-empty grid");
    let last = sweep.points.last().expect("non-empty grid");
    assert!(
        first.yield_mc < last.yield_mc,
        "MC yield must fall with depth: y({}) = {} vs y({}) = {}",
        first.t_useful,
        first.yield_mc,
        last.t_useful,
        last.yield_mc
    );
    assert!(
        first.yield_fast < last.yield_fast,
        "fast yield must fall with depth"
    );

    let (nominal_t, _) = sweep.nominal_optimum();
    let (mc_t, _) = sweep.yield_optimum_mc();
    let (fast_t, _) = sweep.yield_optimum_fast();
    assert!(
        mc_t >= nominal_t,
        "yield optimum (MC) at {mc_t} FO4 is deeper than nominal {nominal_t} FO4"
    );
    assert!(
        fast_t >= nominal_t,
        "yield optimum (fast) at {fast_t} FO4 is deeper than nominal {nominal_t} FO4"
    );
}

// ---------------------------------------------------------------------------
// /v1/yield serving contract
// ---------------------------------------------------------------------------

const YIELD_BODY: &str = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[4.0,6.0,9.0],
    "warmup":400,"measure":1500,"seed":11,"samples":12,"variation_seed":7}"#;

/// Cells a `YIELD_BODY` sweep simulates: nominal grid plus dies.
const YIELD_CELLS: u64 = (3 * 2) + (3 * 12 * 2);

#[test]
fn routed_yield_is_byte_identical_to_single_node_and_streams_the_same_bytes() {
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let router = start_router(&[&shard_a, &shard_b]);
    let single = start(ServeConfig::default());

    let routed = post(router.addr, "/v1/yield", YIELD_BODY);
    let local = post(single.addr, "/v1/yield", YIELD_BODY);
    assert_eq!(routed.status, 200, "body: {}", routed.body);
    assert_eq!(local.status, 200, "body: {}", local.body);
    assert_eq!(routed.body, local.body, "routed yield sweep diverged");

    // The scatter was real: shards served cells, the router never fell
    // back to a local fill.
    let m = metrics(router.addr);
    let records: u64 = m
        .get("router")
        .and_then(|r| r.get("shards"))
        .and_then(Json::as_arr)
        .expect("router shard stats")
        .iter()
        .map(|s| s.get("records").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert!(records > 0, "no shard served any record");
    assert_eq!(counter(&m, &["router", "local_fills"]), 0);
    assert_eq!(counter(&m, &["yield", "sweeps"]), 1);
    assert_eq!(counter(&m, &["yield", "mc_samples"]), 3 * 12 * 2);

    // Streamed delivery: head + one fragment per point + tail, and the
    // chunks concatenate to exactly the buffered body — through the
    // router and on the single node alike.
    let streamed_body = &YIELD_BODY.replace("\"seed\":11", "\"seed\":11,\"stream\":true");
    for (name, addr) in [("router", router.addr), ("single", single.addr)] {
        let chunks = StreamingClient::post(addr, "/v1/yield", streamed_body).drain();
        assert_eq!(chunks.len(), 3 + 2, "{name}: head, per-point, tail");
        assert_eq!(chunks.concat(), local.body, "{name}: streamed != buffered");
    }
    let m = metrics(single.addr);
    assert_eq!(counter(&m, &["yield", "streamed"]), 1);
    assert_eq!(counter(&m, &["yield", "stream_chunks"]), 5);

    // The streamed run warmed the response cache for its buffered twin:
    // a repeat is served without another sweep.
    let again = post(single.addr, "/v1/yield", YIELD_BODY);
    assert_eq!(again.body, local.body);
    assert_eq!(
        counter(&metrics(single.addr), &["yield", "sweeps"]),
        2,
        "repeat was cache-served, not recomputed"
    );
}

/// Yield sample cells are ordinary cells: they land in the persistent
/// store and a restarted daemon replays them instead of resimulating.
#[test]
fn yield_samples_survive_a_restart_through_the_cell_store() {
    let mut first = start_with_cache_dir(ServeConfig::default());
    let cold = post(first.addr, "/v1/yield", YIELD_BODY);
    assert_eq!(cold.status, 200, "body: {}", cold.body);
    wait_for_counter(
        first.addr,
        &["caches", "persistent", "appended"],
        YIELD_CELLS,
    );
    let dir = first.take_cache_dir();
    drop(first);

    let warm = restart_on_cache_dir(ServeConfig::default(), dir);
    let served = post(warm.addr, "/v1/yield", YIELD_BODY);
    assert_eq!(served.status, 200);
    assert_eq!(served.body, cold.body, "restart changed the yield bytes");
    let m = metrics(warm.addr);
    assert_eq!(
        counter(&m, &["caches", "persistent", "hits"]),
        YIELD_CELLS,
        "every cell (nominal and per-die) replayed from the store"
    );
    assert_eq!(
        counter(&m, &["caches", "persistent", "recovered_entries"]),
        YIELD_CELLS
    );
}

/// A shard dying while a yield sweep is in flight must not change the
/// response: the router fails the dead shard's cells over to the survivor
/// and still returns the single-node bytes.
#[test]
fn yield_sweep_survives_a_shard_dying_mid_flight() {
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let router = start_router(&[&shard_a, &shard_b]);
    let single = start(ServeConfig::default());

    let addr = router.addr;
    let request = std::thread::spawn(move || post(addr, "/v1/yield", YIELD_BODY));
    // Kill a shard while the Monte Carlo scatter is (most likely) in
    // progress. Whether the kill lands before, during, or after the
    // scatter, the answer must be the same bytes.
    std::thread::sleep(std::time::Duration::from_millis(150));
    drop(shard_a);
    let routed = request.join().expect("request thread");
    let local = post(single.addr, "/v1/yield", YIELD_BODY);
    assert_eq!(routed.status, 200, "body: {}", routed.body);
    assert_eq!(
        routed.body, local.body,
        "mid-flight shard death changed bytes"
    );
}

/// Impossible distribution configurations are rejected with a structured
/// `400 invalid_distribution` — on shards and through the router — and
/// counted; shape errors keep the API-wide `422 invalid_request`.
#[test]
fn invalid_distributions_get_structured_400s() {
    let shard = start(ServeConfig::default());
    let router = start_router(&[&shard]);

    for addr in [shard.addr, router.addr] {
        for body in [
            r#"{"sigma_fo4":-0.1}"#,
            r#"{"distribution":"cauchy"}"#,
            r#"{"guardband":-0.5}"#,
        ] {
            let r = post(addr, "/v1/yield", body);
            assert_eq!(r.status, 400, "{body} => {}", r.body);
            assert_eq!(error_code(&r), "invalid_distribution", "{body}");
        }
        // Shape problems stay 422, like every other endpoint.
        let r = post(addr, "/v1/yield", r#"{"samples":0}"#);
        assert_eq!(r.status, 422, "body: {}", r.body);
        assert_eq!(error_code(&r), "invalid_request");
        let r = post(addr, "/v1/yield", r#"{"samples":100000}"#);
        assert_eq!(r.status, 422);
        // And a GET on the POST-only endpoint is a 405.
        let r = common::get(addr, "/v1/yield");
        assert_eq!(r.status, 405);
    }
    let m = metrics(shard.addr);
    assert_eq!(counter(&m, &["yield", "invalid_distribution"]), 3);
    assert_eq!(counter(&m, &["yield", "sweeps"]), 0, "nothing simulated");
}
