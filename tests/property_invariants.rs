//! Property-based tests over the core data structures and simulator
//! invariants, spanning crates.

use fo4depth::isa::{ArchReg, Instruction, Opcode};
use fo4depth::pipeline::{CoreConfig, InOrderCore, OutOfOrderCore};
use fo4depth::uarch::cache::Cache;
use fo4depth::uarch::rob::ReorderBuffer;
use fo4depth::uarch::segmented::{SegmentedWindow, SelectMode};
use fo4depth::uarch::window::{
    ConventionalWindow, IssueBudget, IssuePort, WindowEntry, WindowModel,
};
use fo4depth::util::{harmonic_mean, Rng64, Xoshiro256StarStar};
use fo4depth::workload::{profiles, BenchClass, BenchProfile, TraceGenerator};
use fo4depth_fo4::{cycles_for, Fo4};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization: at least one cycle, never more than one stage of slack.
    #[test]
    fn cycles_for_is_tight(latency in 0.0f64..400.0, t in 1.0f64..20.0) {
        let c = cycles_for(Fo4::new(latency), Fo4::new(t));
        prop_assert!(c >= 1);
        // c−1 full stages must not cover the latency (up to float fuzz).
        prop_assert!(f64::from(c - 1) * t < latency + t + 1e-6);
        // c stages must cover it.
        prop_assert!(f64::from(c) * t + 1e-6 >= latency.min(f64::from(c) * t));
        prop_assert!(f64::from(c) * t >= latency - 1e-6);
    }

    /// Quantized latency is monotone non-increasing in t_useful.
    #[test]
    fn cycles_monotone_in_t(latency in 1.0f64..400.0, a in 1.0f64..19.0, delta in 0.1f64..5.0) {
        let tight = cycles_for(Fo4::new(latency), Fo4::new(a));
        let loose = cycles_for(Fo4::new(latency), Fo4::new(a + delta));
        prop_assert!(loose <= tight);
    }

    /// Harmonic mean lies between min and max of its inputs.
    #[test]
    fn harmonic_mean_bounded(xs in proptest::collection::vec(0.001f64..1000.0, 1..20)) {
        let hm = harmonic_mean(xs.iter().copied()).expect("positive inputs");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(hm >= lo - 1e-9 && hm <= hi + 1e-9);
    }

    /// RNG range stays in bounds for arbitrary seeds/bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_range(bound) < bound);
        }
    }

    /// A cache never reports more hits+misses than accesses, and repeating
    /// the same address after a touch always hits.
    #[test]
    fn cache_repeat_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(16 * 1024, 2, 64);
        for &a in &addrs {
            let _ = c.access(a);
            prop_assert!(c.access(a), "immediate repeat of {a:#x} must hit");
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64 * 2);
    }

    /// Issue windows never exceed their budget or capacity, and selected
    /// entries come out in age order.
    #[test]
    fn window_select_respects_budget(
        readies in proptest::collection::vec(0u64..8, 1..32),
        now in 0u64..8,
    ) {
        let mut conventional = ConventionalWindow::new(32, 1);
        let mut segmented = SegmentedWindow::new(32, 4, SelectMode::figure12());
        for (i, &r) in readies.iter().enumerate() {
            let e = WindowEntry { seq: i as u64, port: IssuePort::Int, ready_at: r };
            conventional.insert(e);
            segmented.insert(e);
        }
        for w in [&mut conventional as &mut dyn WindowModel, &mut segmented] {
            let before = w.len();
            let mut budget = IssueBudget::alpha_like();
            let picked = w.select(now, &mut budget);
            prop_assert!(picked.len() <= 4, "int budget is 4");
            prop_assert_eq!(w.len(), before - picked.len());
            for pair in picked.windows(2) {
                prop_assert!(pair[0].seq < pair[1].seq, "age order violated");
            }
            for e in &picked {
                prop_assert!(e.ready_at <= now, "issued before ready");
            }
        }
    }

    /// The ROB commits in strict program order for arbitrary completion
    /// schedules.
    #[test]
    fn rob_commits_in_order(completions in proptest::collection::vec(0u64..50, 1..40)) {
        let mut rob = ReorderBuffer::new(64);
        for (seq, _) in completions.iter().enumerate() {
            rob.allocate(seq as u64, None).expect("capacity");
        }
        for (seq, &c) in completions.iter().enumerate() {
            rob.complete(seq as u64, c);
        }
        let mut committed = Vec::new();
        // Enough cycles for the worst case: latest completion plus drain
        // time at the commit width.
        for cycle in 0..=(50 + completions.len() as u64) {
            committed.extend(rob.commit_ready(cycle, 4).into_iter().map(|e| e.seq));
        }
        let sorted: Vec<u64> = (0..completions.len() as u64).collect();
        prop_assert_eq!(committed, sorted);
    }

    /// Trace generation is total and well-formed for arbitrary profile
    /// perturbations within the valid parameter space.
    #[test]
    fn trace_generator_total(
        seed in any::<u64>(),
        dep in 1.0f64..20.0,
        far in 0.0f64..1.0,
        l2r in 0.0f64..0.4,
        mem in 0.0f64..0.4,
    ) {
        let mut p: BenchProfile = profiles::by_name("176.gcc").expect("profile");
        p.mean_dep_distance = dep;
        p.far_source_fraction = far;
        p.memory.l2_resident = l2r;
        p.memory.memory = mem;
        prop_assume!(p.validate().is_ok());
        for inst in TraceGenerator::new(p, seed).take(300) {
            if inst.op_class().is_memory() {
                prop_assert!(inst.mem_addr.is_some());
            }
            if inst.op_class().is_control() {
                prop_assert!(inst.branch.is_some());
            }
        }
    }
}

proptest! {
    // Simulator-level properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// IPC is bounded by the dispatch width on both cores, for any
    /// benchmark and seed.
    #[test]
    fn ipc_bounded_by_width(seed in 1u64..1000, idx in 0usize..18) {
        let p = profiles::all()[idx].clone();
        let cfg = CoreConfig::alpha_like();

        let mut ooo = OutOfOrderCore::new(cfg.clone(), TraceGenerator::new(p.clone(), seed));
        ooo.run(1_000);
        let r = ooo.run(5_000);
        prop_assert!(r.ipc() <= f64::from(cfg.dispatch_width) + 1e-9);
        prop_assert!(r.ipc() > 0.01);

        let mut ino = InOrderCore::new(cfg.clone(), TraceGenerator::new(p, seed));
        ino.run(1_000);
        let r = ino.run(5_000);
        prop_assert!(r.ipc() <= f64::from(cfg.dispatch_width) + 1e-9);
    }
}

/// The shrunk case from `tests/property_invariants.proptest-regressions`
/// (`completions = [48, 0, 0, ...]`), pinned as a deterministic test: a
/// head entry completing long after its already-complete successors must
/// not stall or reorder commit.
#[test]
fn rob_regression_late_head_completion() {
    let completions: Vec<u64> = std::iter::once(48)
        .chain(std::iter::repeat_n(0, 12))
        .collect();
    let mut rob = ReorderBuffer::new(64);
    for (seq, _) in completions.iter().enumerate() {
        rob.allocate(seq as u64, None).expect("capacity");
    }
    for (seq, &c) in completions.iter().enumerate() {
        rob.complete(seq as u64, c);
    }
    let mut committed = Vec::new();
    for cycle in 0..=(50 + completions.len() as u64) {
        committed.extend(rob.commit_ready(cycle, 4).into_iter().map(|e| e.seq));
    }
    let sorted: Vec<u64> = (0..completions.len() as u64).collect();
    assert_eq!(committed, sorted);
}

/// A focused determinism check (not a proptest: exact equality matters).
#[test]
fn simulators_are_bit_deterministic() {
    for p in profiles::all().into_iter().take(3) {
        let cfg = CoreConfig::alpha_like();
        let run = || {
            let mut c = OutOfOrderCore::new(cfg.clone(), TraceGenerator::new(p.clone(), 9));
            c.run(2_000);
            c.run(6_000)
        };
        assert_eq!(run(), run(), "{} not deterministic", p.name);
    }
}

/// Dependent-chain IPC on the OoO core cannot exceed 1 regardless of
/// configuration width.
#[test]
fn dependent_chain_cannot_exceed_unit_ipc() {
    let chain = (0..).map(|i| {
        Instruction::alu(
            Opcode::Addq,
            ArchReg::int(1),
            ArchReg::int(1),
            ArchReg::int(1),
        )
        .at_pc(0x1000 + i * 4)
    });
    let mut core = OutOfOrderCore::new(CoreConfig::alpha_like(), chain);
    core.run(500);
    assert!(core.run(3_000).ipc() <= 1.0 + 1e-9);
}

/// Class orderings hold for the calibrated profile set: vector FP has the
/// most ILP, integer the least dependency slack.
#[test]
fn calibrated_class_structure() {
    let all = profiles::all();
    let mean_dep = |class: BenchClass| {
        let v: Vec<f64> = all
            .iter()
            .filter(|p| p.class == class)
            .map(|p| p.mean_dep_distance)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(mean_dep(BenchClass::VectorFp) > mean_dep(BenchClass::NonVectorFp));
    assert!(mean_dep(BenchClass::NonVectorFp) > mean_dep(BenchClass::Integer));
}

// ---- observability-layer invariants ------------------------------------

use fo4depth::pipeline::{Counters, StallCause};
use fo4depth::uarch::OccupancyHist;
use fo4depth::util::Json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slot identity survives arbitrary record sequences, and no cause
    /// ever accumulates more slots than were lost in total.
    #[test]
    fn counter_slot_identity_is_exact(
        width in 1u32..8,
        cycles in proptest::collection::vec((0u32..8, 0usize..StallCause::COUNT), 1..200),
    ) {
        let mut c = Counters::new(width);
        let mut lost = 0u64;
        for (issued, cause) in cycles {
            let issued = issued.min(width);
            let stall = (issued < width).then(|| StallCause::ALL[cause]);
            c.record_cycle(issued, stall);
            lost += u64::from(width - issued);
        }
        prop_assert!(c.identity_holds());
        prop_assert_eq!(c.stall_total(), lost);
        for cause in StallCause::ALL {
            prop_assert!(c.stalls(cause) <= lost);
        }
        // The CPI stack redistributes the identity over instructions: its
        // components must sum to cycles/instructions.
        let instructions = c.useful_slots.max(1);
        let total: f64 = c.cpi_stack(instructions).iter().map(|(_, v)| v).sum();
        let cpi = c.cycles as f64 / instructions as f64;
        prop_assert!((total - cpi).abs() < 1e-9, "{} vs {}", total, cpi);
    }

    /// Occupancy histograms: bucket sums equal samples, the mean lies
    /// within the observed range, and `max` names a non-empty bucket.
    #[test]
    fn occupancy_histogram_invariants(
        occs in proptest::collection::vec(0usize..200, 1..300),
    ) {
        let mut h = OccupancyHist::new();
        for &o in &occs {
            h.record(o);
        }
        prop_assert_eq!(h.samples(), occs.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), occs.len() as u64);
        let lo = *occs.iter().min().expect("non-empty") as f64;
        let hi = *occs.iter().max().expect("non-empty") as f64;
        prop_assert!(h.mean() >= lo - 1e-9 && h.mean() <= hi + 1e-9);
        prop_assert_eq!(h.max(), *occs.iter().max().expect("non-empty"));
        prop_assert!(h.buckets()[h.max()] > 0);
    }

    /// Counter blocks serialize to JSON that parses back to the same value
    /// for arbitrary counter contents.
    #[test]
    fn counters_json_round_trips(
        width in 1u32..8,
        cycles in proptest::collection::vec((0u32..8, 0usize..StallCause::COUNT), 1..60),
        occs in proptest::collection::vec(0usize..64, 1..60),
    ) {
        let mut c = Counters::new(width);
        for &(issued, cause) in &cycles {
            let issued = issued.min(width);
            c.record_cycle(issued, (issued < width).then(|| StallCause::ALL[cause]));
        }
        for &o in &occs {
            c.window_occupancy.record(o);
        }
        let doc = fo4depth::study::report::counters_json(&c, c.useful_slots.max(1));
        let parsed = Json::parse(&doc.render()).expect("valid JSON");
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(parsed.get("cycles").and_then(Json::as_u64), Some(c.cycles));
        for cause in StallCause::ALL {
            let got = parsed
                .get("stall_slots")
                .and_then(|s| s.get(cause.key()))
                .and_then(Json::as_u64);
            prop_assert_eq!(got, Some(c.stalls(cause)));
        }
    }
}
