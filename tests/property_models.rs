//! Property-based tests over the analytical models (cacti, scaler, wires)
//! and the trace serialization format.

use fo4depth::cacti::area::{cam_area, sram_area};
use fo4depth::cacti::{access_time, cam_access_time, CamConfig, SramConfig};
use fo4depth::fo4::{Fo4, Rounding, TechNode, WireModel};
use fo4depth::isa::{ArchReg, BranchInfo, Instruction, Opcode};
use fo4depth::study::latency::{LatencyTable, StructureSet};
use fo4depth::study::scaler::{MemoryConvention, ScaleOptions, ScaledMachine};
use fo4depth::workload::traceio::{parse_line, render_line};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    use Opcode::*;
    prop_oneof![
        Just(Addq),
        Just(Subq),
        Just(And),
        Just(Mulq),
        Just(Addt),
        Just(Divt),
        Just(Sqrtt),
        Just(Ldq),
        Just(Ldt),
        Just(Stq),
        Just(Beq),
        Just(Bge),
        Just(Br),
        Just(Ret),
        Just(Nop),
    ]
}

fn arb_reg() -> impl Strategy<Value = Option<ArchReg>> {
    prop_oneof![
        Just(None),
        (0u8..32).prop_map(|i| Some(ArchReg::int(i))),
        (0u8..32).prop_map(|i| Some(ArchReg::fp(i))),
    ]
}

prop_compose! {
    fn arb_instruction()(
        opcode in arb_opcode(),
        dest in arb_reg(),
        src1 in arb_reg(),
        src2 in arb_reg(),
        mem in proptest::option::of(0u64..u64::MAX / 2),
        branch in proptest::option::of((any::<bool>(), 0u64..u64::MAX / 2)),
        pc in 0u64..u64::MAX / 2,
    ) -> Instruction {
        Instruction {
            opcode,
            dest,
            src1,
            src2,
            mem_addr: mem,
            branch: branch.map(|(taken, target)| BranchInfo { taken, target }),
            pc,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The trace text format round-trips arbitrary instructions exactly.
    #[test]
    fn trace_format_round_trips(inst in arb_instruction()) {
        let line = render_line(&inst);
        let back = parse_line(&line).expect("rendered lines parse");
        prop_assert_eq!(inst, back);
    }

    /// Cache access time grows (weakly) with capacity for any geometry.
    #[test]
    fn cacti_monotone_in_capacity(
        kb_small in 3u32..8,
        step in 1u32..4,
        ways in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let small = 1u64 << (kb_small + 10);
        let large = 1u64 << (kb_small + step + 10);
        let t_small = access_time(&SramConfig::cache(small, ways, 64)).total;
        let t_large = access_time(&SramConfig::cache(large, ways, 64)).total;
        prop_assert!(t_large >= t_small, "{small}B {t_small:?} vs {large}B {t_large:?}");
    }

    /// Area grows strictly with capacity, and energy stays positive.
    #[test]
    fn cacti_area_monotone(kb in 3u32..10, ways in prop_oneof![Just(1u32), Just(2)]) {
        let a = sram_area(&SramConfig::cache(1 << (kb + 10), ways, 64), TechNode::NM_100);
        let b = sram_area(&SramConfig::cache(1 << (kb + 11), ways, 64), TechNode::NM_100);
        prop_assert!(b.area_mm2 > a.area_mm2);
        prop_assert!(a.energy_pj > 0.0);
    }

    /// CAM wakeup time and search energy grow with entries.
    #[test]
    fn cam_monotone_in_entries(small in 4u32..32, extra in 4u32..64) {
        let a = cam_access_time(&CamConfig::issue_window(small, 4)).total;
        let b = cam_access_time(&CamConfig::issue_window(small + extra, 4)).total;
        prop_assert!(b >= a);
        let ea = cam_area(&CamConfig::issue_window(small, 4), TechNode::NM_100).energy_pj;
        let eb = cam_area(&CamConfig::issue_window(small + extra, 4), TechNode::NM_100).energy_pj;
        prop_assert!(eb > ea);
    }

    /// Every quantized latency table is internally consistent: nonzero
    /// cycles, monotone against t_useful, FU rows anchored at the Alpha.
    #[test]
    fn latency_table_well_formed(t in 2.0f64..17.0, rounding in prop_oneof![Just(Rounding::Ceil), Just(Rounding::Nearest)]) {
        let s = StructureSet::alpha_21264();
        let table = LatencyTable::at_rounded(&s, Fo4::new(t), rounding);
        for c in [
            table.icache, table.dcache, table.l2, table.predictor, table.rename,
            table.issue_window, table.regfile, table.int_add, table.int_mult,
            table.fp_add, table.fp_mult, table.fp_div, table.fp_sqrt,
        ] {
            prop_assert!(c >= 1);
        }
        prop_assert!(table.l2 >= table.dcache);
        prop_assert!(table.fp_sqrt >= table.fp_div);
        prop_assert!(table.fp_div >= table.fp_mult);
    }

    /// Every scaled machine validates, regardless of clock point, overhead,
    /// window size, memory convention, rounding, or wire budget.
    #[test]
    fn scaled_machines_always_validate(
        t in 2.0f64..17.0,
        overhead in 0.0f64..6.0,
        window in prop_oneof![Just(16u32), Just(32), Just(64)],
        cycles_mem in prop_oneof![Just(true), Just(false)],
        transport in 0.0f64..40.0,
    ) {
        let options = ScaleOptions {
            overhead: Fo4::new(overhead),
            window_entries: window,
            memory: if cycles_mem {
                MemoryConvention::ConstantCycles(113)
            } else {
                MemoryConvention::AbsoluteTime(Fo4::new(1950.0))
            },
            rounding: Rounding::Ceil,
            transport_mm: transport,
            wires: WireModel::default(),
        };
        let m = ScaledMachine::with_options(&StructureSet::alpha_21264(), Fo4::new(t), options);
        prop_assert!(m.config.validate().is_ok());
        prop_assert!(m.period_ps() > 0.0);
        // Deeper clocks never shorten the front end.
        let deeper = ScaledMachine::with_options(
            &StructureSet::alpha_21264(),
            Fo4::new(t / 2.0),
            options,
        );
        prop_assert!(deeper.config.depths.front_end() >= m.config.depths.front_end());
    }

    /// Wire transport stages are monotone in both distance and clock depth.
    #[test]
    fn wire_stages_monotone(mm in 0.0f64..50.0, extra_mm in 0.1f64..20.0, t in 2.0f64..16.0) {
        let w = WireModel::default();
        let near = w.transport_stages(mm, Fo4::new(t));
        let far = w.transport_stages(mm + extra_mm, Fo4::new(t));
        prop_assert!(far >= near);
        let shallow = w.transport_stages(mm + extra_mm, Fo4::new(t + 2.0));
        prop_assert!(shallow <= far);
    }
}
