//! Materialized-trace equivalence: a [`TraceArena`] replay must be
//! indistinguishable — instruction for instruction, and through a whole
//! depth sweep, byte for byte — from the streaming [`TraceGenerator`] path
//! it replaced.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use fo4depth::exec::Pool;
use fo4depth::study::latency::StructureSet;
use fo4depth::study::scaler::ScaledMachine;
use fo4depth::study::sim::SimParams;
use fo4depth::study::sweep::{
    build_arenas, depth_sweep_arenas, depth_sweep_spec, CoreKind, SweepSpec,
};
use fo4depth::workload::{profiles, BenchProfile, TraceArena, TraceGenerator};
use fo4depth_fo4::Fo4;
use fo4depth_pipeline::{InOrderCore, OutOfOrderCore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay is instruction-for-instruction identical to streaming for an
    /// arbitrary profile, seed, and materialized length — including reads
    /// past the materialized prefix, where the cursor falls back to the
    /// arena's stored generator tail.
    #[test]
    fn cursor_replays_streaming_exactly(
        pidx in 0usize..32,
        seed in 0u64..1_000_000,
        len in 0usize..3_000,
        extra in 0usize..600,
    ) {
        let all = profiles::all();
        let p = all[pidx % all.len()].clone();
        let arena = Arc::new(TraceArena::generate(p.clone(), seed, len));
        let streamed: Vec<_> = TraceGenerator::new(p, seed).take(len + extra).collect();
        let replayed: Vec<_> = arena.cursor().take(len + extra).collect();
        prop_assert_eq!(streamed, replayed);
    }

    /// The arena's captured prewarm set is the generator's, for any seed.
    #[test]
    fn arena_prewarm_matches_generator(pidx in 0usize..32, seed in 0u64..100_000) {
        let all = profiles::all();
        let p = all[pidx % all.len()].clone();
        let arena = TraceArena::generate(p.clone(), seed, 16);
        let expected = TraceGenerator::new(p, seed).prewarm_addresses();
        prop_assert_eq!(arena.prewarm_addresses(), expected.as_slice());
    }
}

fn test_profiles() -> Vec<BenchProfile> {
    ["164.gzip", "171.swim", "181.mcf"]
        .into_iter()
        .map(|n| profiles::by_name(n).expect("known benchmark"))
        .collect()
}

fn test_params() -> SimParams {
    SimParams {
        warmup: 2_000,
        measure: 6_000,
        seed: 1,
    }
}

/// The arena-backed sweep reproduces a hand-rolled streaming reference —
/// fresh generator per cell, exactly the pre-arena execution model — bit
/// for bit, at both pool sizes and on both cores.
#[test]
fn arena_sweep_matches_streaming_reference() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let points: Vec<Fo4> = [3.0, 6.0].into_iter().map(Fo4::new).collect();
    for core in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let spec = SweepSpec {
            core,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points: &points,
            observed: false,
        };
        for jobs in [1, 4] {
            let sweep = depth_sweep_spec(&spec, &Pool::new(jobs));
            for (pi, point) in sweep.points.iter().enumerate() {
                let machine = ScaledMachine::at(&structures, points[pi], Fo4::new(1.8));
                for (bi, outcome) in point.outcomes.iter().enumerate() {
                    let gen = TraceGenerator::new(profs[bi].clone(), params.seed);
                    let prewarm = gen.prewarm_addresses();
                    let reference = match core {
                        CoreKind::OutOfOrder => {
                            let mut c = OutOfOrderCore::new(machine.config.clone(), gen);
                            c.prewarm(prewarm);
                            c.run(params.warmup);
                            c.run(params.measure)
                        }
                        CoreKind::InOrder => {
                            let mut c = InOrderCore::new(machine.config.clone(), gen);
                            c.prewarm(prewarm);
                            c.run(params.warmup);
                            c.run(params.measure)
                        }
                    };
                    assert_eq!(
                        outcome.result, reference,
                        "{core:?} jobs={jobs} point {pi} bench {}: arena diverged from streaming",
                        profs[bi].name
                    );
                }
            }
        }
    }
}

/// One arena set shared across pool sizes and cores renders byte-identical
/// sweep CSVs — the `--jobs` invariance the CLI ships.
#[test]
fn shared_arenas_are_pool_invariant_byte_for_byte() {
    let profs = test_profiles();
    let params = test_params();
    let structures = StructureSet::alpha_21264();
    let points: Vec<Fo4> = [4.0, 8.0].into_iter().map(Fo4::new).collect();
    let serial = Pool::new(1);
    let wide = Pool::new(4);
    let arenas = build_arenas(&profs, &params, &serial);
    for core in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let spec = SweepSpec {
            core,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points: &points,
            observed: false,
        };
        let a = depth_sweep_arenas(&spec, &arenas, &serial);
        let b = depth_sweep_arenas(&spec, &arenas, &wide);
        common::assert_sweeps_bitwise_eq(
            &format!("{core:?}: shared-arena sweep across pool sizes"),
            &a,
            &b,
        );
    }
}
