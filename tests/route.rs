//! End-to-end tests of the sharded serving tier: real shard daemons on
//! real sockets, fronted by a real router, driven by the shared HTTP
//! client.
//!
//! The claims under test are the routing subsystem's contract:
//! byte-identity with single-node serving (dense, adaptive, and streamed),
//! failover when a shard dies, order-independent gather reassembly,
//! single-flight across the tier, keep-alive reuse on the upstream wire
//! protocol, and structured rejection of unknown schema versions.

mod common;

use std::time::Duration;

use common::{counter, metrics, post, start, StreamingClient, TestServer};
use fo4depth::serve::api::{CellsRequest, RequestLimits, SweepRequest};
use fo4depth::serve::client::Connection;
use fo4depth::serve::router::place_records;
use fo4depth::serve::{build_engine, store, ServeConfig};
use fo4depth::study::cells::assemble_sweep;
use fo4depth::study::latency::StructureSet;
use fo4depth::util::Json;

/// Starts a router fronting the given shards, on its own ephemeral port.
fn start_router(shards: &[&TestServer]) -> TestServer {
    let config = ServeConfig {
        shards: shards.iter().map(|s| s.addr.to_string()).collect(),
        ..ServeConfig::default()
    };
    start(config)
}

/// The error code of a structured error response.
fn error_code(response: &common::Response) -> String {
    response
        .json()
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("structured error code")
        .to_string()
}

#[test]
fn routed_sweeps_are_byte_identical_to_single_node() {
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let router = start_router(&[&shard_a, &shard_b]);
    let single = start(ServeConfig::default());

    // Dense: the router scatters the cold cells across both shards and
    // must reassemble the exact bytes a single node renders.
    let dense = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.5,7.3,9.1],"warmup":400,"measure":1500,"seed":11}"#;
    let routed = post(router.addr, "/v1/sweep", dense);
    let local = post(single.addr, "/v1/sweep", dense);
    assert_eq!(routed.status, 200, "body: {}", routed.body);
    assert_eq!(routed.body, local.body, "routed dense sweep diverged");

    // Both shards actually served cells — the scatter was real, not a
    // local fallback.
    let m = metrics(router.addr);
    let shards = m
        .get("router")
        .and_then(|r| r.get("shards"))
        .and_then(Json::as_arr)
        .expect("router shard stats");
    let records: u64 = shards
        .iter()
        .map(|s| s.get("records").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert!(records > 0, "no shard served any record");
    assert_eq!(counter(&m, &["router", "local_fills"]), 0);

    // Adaptive: a different search mode, same byte-identity bar. The
    // probed subset must match the single node's exactly.
    let adaptive = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.5,7.3,9.1],"warmup":400,"measure":1500,"seed":11,"mode":"adaptive"}"#;
    let routed = post(router.addr, "/v1/sweep", adaptive);
    let local = post(single.addr, "/v1/sweep", adaptive);
    assert_eq!(routed.status, 200, "body: {}", routed.body);
    assert_eq!(routed.body, local.body, "routed adaptive sweep diverged");

    // Streamed: same chunks, same bytes, end to end through the tier.
    let streamed = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.5,7.3,9.1],"warmup":400,"measure":1500,"seed":11,"mode":"adaptive","stream":true}"#;
    let routed = StreamingClient::post(router.addr, "/v1/sweep", streamed).drain();
    let local = StreamingClient::post(single.addr, "/v1/sweep", streamed).drain();
    assert_eq!(
        routed.len(),
        local.len(),
        "routed stream chunk count diverged"
    );
    assert_eq!(
        routed.concat(),
        local.concat(),
        "routed streamed sweep diverged"
    );
}

#[test]
fn router_fails_over_when_a_shard_dies() {
    let shard_a = start(ServeConfig::default());
    let shard_b = start(ServeConfig::default());
    let router = start_router(&[&shard_a, &shard_b]);
    let single = start(ServeConfig::default());

    // Kill one shard before any traffic: every cell it owned must fail
    // over to the survivor, and the sweep must still be byte-identical.
    drop(shard_a);
    let body = r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.0,6.5,8.0],"warmup":400,"measure":1500,"seed":13}"#;
    let routed = post(router.addr, "/v1/sweep", body);
    let local = post(single.addr, "/v1/sweep", body);
    assert_eq!(routed.status, 200, "body: {}", routed.body);
    assert_eq!(routed.body, local.body, "failover sweep diverged");

    let m = metrics(router.addr);
    assert!(
        counter(&m, &["router", "failovers"]) >= 1,
        "no failover recorded: {}",
        m.pretty()
    );

    // The dead shard is (or soon will be) flagged down by failures or the
    // liveness probe; the survivor stays up.
    let survivor_up = m
        .get("router")
        .and_then(|r| r.get("shards"))
        .and_then(Json::as_arr)
        .expect("router shard stats")
        .iter()
        .filter_map(|s| match s.get("up") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        })
        .nth(1);
    assert_eq!(survivor_up, Some(true), "survivor flagged down");
}

#[test]
fn identical_concurrent_routed_sweeps_are_single_flight_across_the_tier() {
    let shard = start(ServeConfig::default());
    let router = start_router(&[&shard]);
    let body =
        r#"{"benchmarks":["164.gzip"],"points":[6.0,8.0],"warmup":400,"measure":1500,"seed":17}"#;

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let r = post(router.addr, "/v1/sweep", body);
                    assert_eq!(r.status, 200, "body: {}", r.body);
                    r.body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("post"))
            .collect()
    });
    assert_eq!(bodies[0], bodies[1], "concurrent responses diverged");

    // However the two requests interleaved (coalesced in flight, or the
    // second served from the response cache), the shard saw exactly one
    // scatter — the cell set simulated once for the whole tier.
    let m = metrics(router.addr);
    let shard_requests: u64 = m
        .get("router")
        .and_then(|r| r.get("shards"))
        .and_then(Json::as_arr)
        .expect("router shard stats")
        .iter()
        .map(|s| s.get("requests").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(shard_requests, 1, "tier saw more than one scatter");
}

#[test]
fn cells_endpoint_streams_binary_records_over_a_kept_alive_connection() {
    let shard = start(ServeConfig::default());
    let spec = Json::parse(
        r#"{"benchmarks":["164.gzip","181.mcf"],"points":[6.0,8.0],"warmup":300,"measure":1000,"seed":19}"#,
    )
    .expect("spec");
    let req = SweepRequest::from_json(&spec, &RequestLimits::default()).expect("valid spec");
    let cells = req.cells(false);
    let body = CellsRequest::body_for(&cells);

    let mut conn = Connection::connect(
        &shard.addr.to_string(),
        Duration::from_secs(10),
        Duration::from_secs(60),
    )
    .expect("connect");

    let head = conn
        .request("POST", "/v1/cells", body.as_bytes(), true)
        .expect("send cells request");
    assert_eq!(head.status, 200);
    assert!(head.chunked(), "cells response must be chunked");
    assert_eq!(
        head.header("content-type"),
        Some("application/octet-stream")
    );
    assert!(head.keep_alive(), "server must honour keep-alive");

    // Decode every record off the wire: one binary record per cell, each
    // fingerprint matching a requested cell, each payload a decodable
    // outcome.
    let mut seen = Vec::new();
    while let Some(chunk) = conn.next_chunk().expect("chunk") {
        let mut rest = &chunk[..];
        while !rest.is_empty() {
            let (fingerprint, payload, consumed) =
                store::decode_record(rest).expect("well-formed record");
            store::decode_outcome(payload).expect("decodable outcome");
            seen.push(fingerprint);
            rest = &rest[consumed..];
        }
    }
    let mut expected: Vec<u64> = cells.iter().map(|c| c.fingerprint()).collect();
    expected.sort_unstable();
    seen.sort_unstable();
    assert_eq!(seen, expected, "wire records != requested cells");

    // The same connection serves a second request — persistent upstream
    // connections are real, not advisory.
    let head = conn
        .request("POST", "/v1/cells", body.as_bytes(), true)
        .expect("second request on kept-alive connection");
    assert_eq!(head.status, 200);
    let warm = conn.read_body(&head).expect("second body");
    assert!(!warm.is_empty(), "warm repeat returned no records");
}

#[test]
fn gathered_records_place_out_of_order_duplicated_and_missing() {
    let engine = build_engine(&ServeConfig::default()).expect("engine");
    let spec = Json::parse(
        r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.0,7.0,9.0],"warmup":300,"measure":1000,"seed":23}"#,
    )
    .expect("spec");
    let req = SweepRequest::from_json(&spec, &RequestLimits::default()).expect("valid spec");
    let reference = engine.sweep(&req, false);

    let cells = req.cells(false);
    let outcomes = engine.fill_cells(&cells);

    // A hostile gather: records arrive in reverse order, the first two
    // are duplicated, one is withheld entirely, and a record for a
    // fingerprint nobody asked for is mixed in.
    let withheld = cells.len() - 2;
    let mut records: Vec<(u64, fo4depth::study::sim::BenchOutcome)> = cells
        .iter()
        .zip(&outcomes)
        .enumerate()
        .rev()
        .filter(|(i, _)| *i != withheld)
        .map(|(_, (c, o))| (c.fingerprint(), o.clone()))
        .collect();
    records.push(records[records.len() - 1].clone());
    records.push(records[0].clone());
    records.push((0xdead_beef_dead_beef, outcomes[0].clone()));

    let mut slots: Vec<Option<fo4depth::study::sim::BenchOutcome>> = vec![None; cells.len()];
    let unknown = place_records(&cells, &records, &mut slots);
    assert_eq!(unknown, 1, "exactly the alien fingerprint is unknown");
    for (i, slot) in slots.iter().enumerate() {
        if i == withheld {
            assert!(slot.is_none(), "withheld cell {i} must stay unresolved");
        } else {
            assert!(slot.is_some(), "cell {i} not placed");
        }
    }

    // Resolve the hole the way the router does (local compute) and the
    // reassembled sweep is bit-identical to the straight-through path.
    slots[withheld] = Some(outcomes[withheld].clone());
    let assembled = assemble_sweep(
        req.core,
        &StructureSet::alpha_21264(),
        req.overhead,
        &req.points,
        req.profiles.len(),
        slots.into_iter().map(|s| s.expect("resolved")).collect(),
    );
    assert_eq!(assembled, reference, "reassembled sweep diverged");
}

#[test]
fn unknown_schema_versions_are_rejected_with_a_structured_400() {
    let shard = start(ServeConfig::default());
    let router = start_router(&[&shard]);

    // Version 1 (and absence) pass; anything else is a structured 400 on
    // every JSON endpoint, shard and router alike.
    let ok = r#"{"schema_version":1,"benchmarks":["164.gzip"],"points":[6.0],"warmup":300,"measure":1000,"seed":29}"#;
    assert_eq!(post(shard.addr, "/v1/sweep", ok).status, 200);

    let future = r#"{"schema_version":9,"benchmarks":["164.gzip"],"points":[6.0],"warmup":300,"measure":1000,"seed":29}"#;
    for addr in [shard.addr, router.addr] {
        let r = post(addr, "/v1/sweep", future);
        assert_eq!(r.status, 400, "body: {}", r.body);
        assert_eq!(error_code(&r), "unsupported_schema_version");

        let r = post(
            addr,
            "/v1/run",
            r#"{"schema_version":9,"benchmark":"164.gzip","t_useful":6.0}"#,
        );
        assert_eq!(r.status, 400, "body: {}", r.body);
        assert_eq!(error_code(&r), "unsupported_schema_version");

        let r = post(
            addr,
            "/v1/cells",
            r#"{"schema_version":3,"warmup":300,"measure":1000,"seed":29,"overhead":1.8,"observed":false,"core":"ooo","cells":[{"benchmark":"164.gzip","t_useful":6.0}]}"#,
        );
        assert_eq!(r.status, 400, "body: {}", r.body);
        assert_eq!(error_code(&r), "unsupported_schema_version");
    }
}

// ---------------------------------------------------------------------------
// Gather reassembly under replication — property tests
// ---------------------------------------------------------------------------
//
// With `--replication R` the same record can arrive from several
// replicas, a stale or buggy replica can return a conflicting payload
// for a fingerprint, and a faulted wire can deliver corrupted frames.
// `place_records` and the record codec must absorb all of it
// structurally: fill what decodes, count what doesn't, never panic.

use std::sync::OnceLock;

use fo4depth::study::cells::CellSpec;
use fo4depth::study::sim::BenchOutcome;
use proptest::prelude::*;

/// One simulated cell set, shared by every generated case (simulation
/// is deterministic, so computing it once is sound and fast).
fn gather_fixture() -> &'static (Vec<CellSpec>, Vec<BenchOutcome>) {
    static FIXTURE: OnceLock<(Vec<CellSpec>, Vec<BenchOutcome>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let engine = build_engine(&ServeConfig::default()).expect("engine");
        let spec = Json::parse(
            r#"{"benchmarks":["164.gzip","181.mcf"],"points":[5.0,7.0],"warmup":300,"measure":1000,"seed":47}"#,
        )
        .expect("spec");
        let req = SweepRequest::from_json(&spec, &RequestLimits::default()).expect("valid spec");
        let cells = req.cells(false);
        let outcomes = engine.fill_cells(&cells);
        (cells, outcomes)
    })
}

/// Deterministically shuffles `items` in place from a seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        // SplitMix64 step; any well-mixed stream works here.
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replicated gathers: every record duplicated 0–3 times (0 =
    /// withheld), some replicas stale (conflicting payload for a known
    /// fingerprint), aliens mixed in, the whole pile shuffled. Placement
    /// never panics, fills exactly the delivered cells, and counts
    /// exactly the aliens as unknown.
    #[test]
    fn replicated_gathers_place_structurally(
        copy_pattern in proptest::collection::vec(0u8..4, 32..33),
        aliens in 0u8..3,
        stale in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (cells, outcomes) = gather_fixture();
        // One copy count per cell, however many cells the sweep expands
        // to (the pattern repeats if the cell set outgrows it).
        let copies: Vec<u8> = (0..cells.len())
            .map(|i| copy_pattern[i % copy_pattern.len()])
            .collect();

        let mut records: Vec<(u64, BenchOutcome)> = Vec::new();
        for ((cell, outcome), &n) in cells.iter().zip(outcomes).zip(&copies) {
            for _ in 0..n {
                records.push((cell.fingerprint(), outcome.clone()));
            }
        }
        if stale && cells.len() >= 2 {
            // A stale replica answers cell 0's fingerprint with cell 1's
            // outcome: structurally valid, semantically conflicting.
            records.push((cells[0].fingerprint(), outcomes[1].clone()));
        }
        for i in 0..aliens {
            records.push((0x5eed_0000_0000_0000 + u64::from(i), outcomes[0].clone()));
        }
        shuffle(&mut records, seed);

        let mut slots: Vec<Option<BenchOutcome>> = vec![None; cells.len()];
        let unknown = place_records(cells, &records, &mut slots);
        prop_assert_eq!(unknown, usize::from(aliens), "alien count mismatch");
        for (i, (slot, &n)) in slots.iter().zip(&copies).enumerate() {
            let delivered = n > 0 || (stale && i == 0 && cells.len() >= 2);
            prop_assert_eq!(
                slot.is_some(),
                delivered,
                "cell {} placement: {} copies delivered",
                i,
                n
            );
        }

        // Placing the same gather again over the now-filled slots is a
        // no-op, not a panic — duplicate fills across replicas are
        // benign.
        let again = place_records(cells, &records, &mut slots);
        prop_assert_eq!(again, usize::from(aliens));
    }

    /// Corrupted wire frames: a valid record stream with a byte flipped,
    /// a truncation, garbage spliced on, or a stale schema version is
    /// rejected structurally by the codec — every frame either decodes
    /// to one of the original records or errors; nothing panics and the
    /// decode loop always terminates.
    #[test]
    fn corrupted_record_frames_reject_structurally(
        flip_at in any::<u64>(),
        flip_with in 1u8..255,
        cut in any::<u64>(),
        mode in 0u8..4,
    ) {
        let (cells, outcomes) = gather_fixture();
        let mut wire = Vec::new();
        let mut originals = Vec::new();
        for (cell, outcome) in cells.iter().zip(outcomes) {
            let payload = store::encode_outcome_tagged(outcome, Some(cell.core));
            originals.push((cell.fingerprint(), payload.clone()));
            wire.extend_from_slice(&store::encode_record(cell.fingerprint(), &payload));
        }

        match mode {
            0 => {
                // Flip one byte anywhere in the stream.
                let at = (flip_at % wire.len() as u64) as usize;
                wire[at] ^= flip_with;
            }
            1 => {
                // Truncate mid-stream.
                let at = (cut % wire.len() as u64) as usize;
                wire.truncate(at);
            }
            2 => {
                // Splice garbage on the end.
                wire.extend_from_slice(&flip_at.to_le_bytes());
                wire.extend_from_slice(&cut.to_le_bytes());
            }
            _ => {
                // Stale schema: rewrite the first record with a wrong
                // outcome version byte. The frame CRC is recomputed, so
                // only the payload gate can reject it.
                let (fingerprint, payload, _) =
                    store::decode_record(&wire).expect("valid first frame");
                let mut stale_payload = payload.to_vec();
                stale_payload[0] = stale_payload[0].wrapping_add(flip_with);
                wire = store::encode_record(fingerprint, &stale_payload);
            }
        }

        // The same loop `/v1/records` install runs: decode frames until
        // a structural error, gate each payload on version + outcome
        // decode, skip what fails.
        let mut rest = &wire[..];
        let mut decoded: Vec<(u64, BenchOutcome)> = Vec::new();
        let mut rejected = 0usize;
        while !rest.is_empty() {
            match store::decode_record(rest) {
                Ok((fingerprint, payload, used)) => {
                    prop_assert!(used > 0, "decode made no progress");
                    match store::payload_core(payload)
                        .and_then(|_| store::decode_outcome(payload))
                    {
                        Ok(outcome) => {
                            // A frame that survives its CRC carries one
                            // of the payloads we encoded, bit for bit.
                            prop_assert!(
                                originals
                                    .iter()
                                    .any(|(f, p)| *f == fingerprint && p == payload),
                                "CRC-clean frame not among the originals"
                            );
                            decoded.push((fingerprint, outcome));
                        }
                        Err(_) => rejected += 1,
                    }
                    rest = &rest[used..];
                }
                Err(_) => {
                    rejected += 1;
                    break;
                }
            }
        }
        prop_assert!(
            decoded.len() + rejected <= originals.len() + 1,
            "more frames than were sent"
        );

        // Whatever survived places cleanly; nothing panics.
        let mut slots: Vec<Option<BenchOutcome>> = vec![None; cells.len()];
        let _ = place_records(cells, &decoded, &mut slots);
    }
}
