//! # fo4depth — the optimal logic depth per pipeline stage
//!
//! A from-scratch Rust reproduction of M.S. Hrishikesh, Norman P. Jouppi,
//! Keith I. Farkas, Doug Burger, Stephen W. Keckler and Premkishore
//! Shivakumar, *The Optimal Logic Depth Per Pipeline Stage is 6 to 8 FO4
//! Inverter Delays*, ISCA 2002 — including every substrate the paper
//! depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`fo4`] | FO4 metric, technology scaling, clock-period model, Figure 1 history |
//! | [`circuit`] | transient circuit simulator: FO4 measurement, pulse-latch overhead (Table 1), ECL-gate equivalence (Appendix A) |
//! | [`cacti`] | Cacti-3.0-style analytical SRAM/cache/CAM timing (Table 3 inputs) |
//! | [`isa`] | synthetic Alpha-flavoured RISC ISA for trace-driven simulation |
//! | [`workload`] | calibrated SPEC CPU2000 stand-in trace generators (Table 2) |
//! | [`uarch`] | predictors, caches, rename, ROB, LSQ, conventional + segmented issue windows (§5) |
//! | [`pipeline`] | cycle-level in-order (§4.1) and out-of-order (§4.3) cores |
//! | [`study`] | the paper's methodology: Table 3 generation, depth sweeps, all experiments |
//! | [`exec`] | persistent work-stealing pool behind every study-level fan-out |
//! | [`util`] | deterministic PRNG, distributions, statistics |
//!
//! This umbrella crate re-exports everything; depend on the individual
//! member crates for narrower builds.
//!
//! # Quick start
//!
//! ```no_run
//! use fo4depth::study::sim::SimParams;
//! use fo4depth::study::sweep::{depth_sweep, CoreKind};
//! use fo4depth::workload::{profiles, BenchClass};
//!
//! let params = SimParams::default();
//! let sweep = depth_sweep(CoreKind::OutOfOrder, &profiles::all(), &params);
//! let (optimum, bips) = sweep.class_optimum(BenchClass::Integer);
//! println!("integer optimum: {optimum} FO4 useful logic/stage ({bips:.2} BIPS)");
//! ```

pub use fo4depth_cacti as cacti;
pub use fo4depth_circuit as circuit;
pub use fo4depth_exec as exec;
pub use fo4depth_fo4 as fo4;
pub use fo4depth_isa as isa;
pub use fo4depth_pipeline as pipeline;
pub use fo4depth_serve as serve;
pub use fo4depth_study as study;
pub use fo4depth_uarch as uarch;
pub use fo4depth_util as util;
pub use fo4depth_variation as variation;
pub use fo4depth_workload as workload;
