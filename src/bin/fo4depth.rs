//! The fo4depth command-line tool: run the study's pieces individually.
//!
//! ```text
//! fo4depth table3                               # print Table 3
//! fo4depth sweep --core ooo --measure 40000     # depth sweep (text + CSV)
//! fo4depth bench 181.mcf --t-useful 6           # one benchmark, one clock
//! fo4depth record 164.gzip 1000 trace.txt       # capture a trace
//! fo4depth replay trace.txt --t-useful 6        # drive the core with it
//! fo4depth validate                             # workload calibration table
//! fo4depth floorplan                            # areas and wire distances
//! fo4depth experiments                          # the paper's experiment registry
//! fo4depth report --quick                       # machine-readable JSON run report
//! ```

use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

use fo4depth::fo4::Fo4;
use fo4depth::study::experiments::registry;
use fo4depth::study::floorplan::Floorplan;
use fo4depth::study::latency::{table3, StructureSet};
use fo4depth::study::render;
use fo4depth::study::report;
use fo4depth::study::scaler::ScaledMachine;
use fo4depth::study::sim::{run_inorder, run_ooo, SimParams};
use fo4depth::study::sweep::{
    build_arenas, depth_sweep_arenas, depth_sweep_with, standard_points, CoreKind, SweepSpec,
};
use fo4depth::study::validation::{self, Bands};
use fo4depth::workload::{profiles, TraceArena, TraceGenerator, TraceReader};
use fo4depth_fo4::TechNode;
use fo4depth_pipeline::OutOfOrderCore;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fo4depth <command> [options]\n\
         commands:\n\
           table3                          print the structure/operation latency table\n\
           sweep [--core ooo|inorder] [--overhead F] [--warmup N] [--measure N]\n\
                 [--bench NAME[,NAME...]] [--csv] [--jobs N]\n\
           bench NAME [--t-useful F] [--warmup N] [--measure N]\n\
           record NAME COUNT [FILE]        capture a synthetic trace (default stdout)\n\
           replay FILE [--t-useful F]      run the out-of-order core on a trace file\n\
           validate                        workload calibration at the Alpha point\n\
           floorplan                       structure areas and wire distances\n\
           experiments                     list the paper's experiments\n\
           report [--core ooo|inorder] [--bench NAME[,NAME...]] [--points F[,F...]]\n\
                  [--quick] [--warmup N] [--measure N] [--seed N] [--out FILE] [--jobs N]\n\
                  emit a machine-readable JSON run report (counters + CPI stacks)\n\
           perf [--core ooo|inorder|both] [--quick] [--jobs N] [--out FILE]\n\
                  time the fixed sweep workload (trace generation and\n\
                  simulation split out); emit a JSON bench report\n\
         `--jobs N` sizes the shared execution pool (1 = serial); the\n\
         FO4DEPTH_THREADS env var sets the default"
    );
    ExitCode::from(2)
}

/// Pulls `--flag value` out of `args`, returning the parsed value.
fn take_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("bad value for {flag}: {raw}");
            std::process::exit(2);
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Applies `--jobs N` to the shared execution pool. Must run before the
/// first pool use; a pool that is already built at a different size cannot
/// be resized, so that case warns instead of silently mis-running.
fn take_jobs(args: &mut Vec<String>) {
    if let Some(n) = take_opt::<usize>(args, "--jobs") {
        if n == 0 {
            eprintln!("--jobs needs a positive value");
            std::process::exit(2);
        }
        if !fo4depth::exec::set_global_threads(n) {
            eprintln!("warning: execution pool already running; --jobs {n} ignored");
        }
    }
}

fn params_from(args: &mut Vec<String>) -> SimParams {
    let mut p = SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    };
    if let Some(w) = take_opt(args, "--warmup") {
        p.warmup = w;
    }
    if let Some(m) = take_opt(args, "--measure") {
        p.measure = m;
    }
    if let Some(s) = take_opt(args, "--seed") {
        p.seed = s;
    }
    p
}

fn cmd_sweep(mut args: Vec<String>) -> ExitCode {
    take_jobs(&mut args);
    let core = match take_opt::<String>(&mut args, "--core").as_deref() {
        None | Some("ooo") => CoreKind::OutOfOrder,
        Some("inorder") => CoreKind::InOrder,
        Some(other) => {
            eprintln!("unknown core {other}");
            return ExitCode::from(2);
        }
    };
    let overhead = take_opt(&mut args, "--overhead").unwrap_or(1.8);
    let csv = take_flag(&mut args, "--csv");
    let params = params_from(&mut args);
    let profs = match take_opt::<String>(&mut args, "--bench") {
        Some(names) => {
            let mut out = Vec::new();
            for n in names.split(',') {
                match profiles::by_name(n) {
                    Some(p) => out.push(p),
                    None => {
                        eprintln!("unknown benchmark {n}");
                        return ExitCode::from(2);
                    }
                }
            }
            out
        }
        None => profiles::all(),
    };
    let sweep = depth_sweep_with(
        core,
        &profs,
        &params,
        &StructureSet::alpha_21264(),
        Fo4::new(overhead),
        &standard_points(),
    );
    if csv {
        print!("{}", render::sweep_csv(&sweep));
    } else {
        print!("{}", render::sweep_table(&sweep));
    }
    ExitCode::SUCCESS
}

fn cmd_bench(mut args: Vec<String>) -> ExitCode {
    let t = take_opt(&mut args, "--t-useful").unwrap_or(6.0);
    let params = params_from(&mut args);
    let Some(name) = args.first() else {
        eprintln!("bench needs a benchmark name");
        return ExitCode::from(2);
    };
    let Some(profile) = profiles::by_name(name) else {
        eprintln!("unknown benchmark {name}; try `fo4depth validate` for the list");
        return ExitCode::from(2);
    };
    let machine = ScaledMachine::at(&StructureSet::alpha_21264(), Fo4::new(t), Fo4::new(1.8));
    let arena = Arc::new(TraceArena::generate(
        profile,
        params.seed,
        params.trace_len(),
    ));
    let ooo = run_ooo(&machine.config, &arena, &params);
    let ino = run_inorder(&machine.config, &arena, &params);
    println!(
        "{name} at t_useful {t} FO4 ({:.2} GHz at 100 nm):",
        1000.0 / machine.period_ps()
    );
    println!(
        "  out-of-order: IPC {:.3}  BIPS {:.3}  mispredict {:.3}  L1 miss {:.3}",
        ooo.result.ipc(),
        ooo.result.bips(machine.period_ps()),
        ooo.result.mispredict_rate(),
        ooo.result.l1.miss_rate()
    );
    println!(
        "  in-order:     IPC {:.3}  BIPS {:.3}",
        ino.result.ipc(),
        ino.result.bips(machine.period_ps())
    );
    ExitCode::SUCCESS
}

fn cmd_record(args: Vec<String>) -> ExitCode {
    let (Some(name), Some(count)) = (args.first(), args.get(1)) else {
        eprintln!("record needs NAME and COUNT");
        return ExitCode::from(2);
    };
    let Some(profile) = profiles::by_name(name) else {
        eprintln!("unknown benchmark {name}");
        return ExitCode::from(2);
    };
    let Ok(count) = count.parse::<usize>() else {
        eprintln!("bad count {count}");
        return ExitCode::from(2);
    };
    let stream = TraceGenerator::new(profile, 1);
    let result = match args.get(2) {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            fo4depth::workload::record(stream, count, std::io::BufWriter::new(file))
        }
        None => fo4depth::workload::record(stream, count, std::io::stdout().lock()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(mut args: Vec<String>) -> ExitCode {
    let t = take_opt(&mut args, "--t-useful").unwrap_or(6.0);
    let mut params = params_from(&mut args);
    let Some(path) = args.first() else {
        eprintln!("replay needs a trace FILE");
        return ExitCode::from(2);
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A finite file cannot satisfy an open-ended run; bound the interval by
    // a cheap line count first.
    let lines = match std::fs::read_to_string(path) {
        Ok(s) => s
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count() as u64,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if lines < 100 {
        eprintln!("trace too short ({lines} instructions)");
        return ExitCode::FAILURE;
    }
    params.warmup = params.warmup.min(lines / 4);
    params.measure = params.measure.min(lines - params.warmup - lines / 10);

    let machine = ScaledMachine::at(&StructureSet::alpha_21264(), Fo4::new(t), Fo4::new(1.8));
    let trace = TraceReader::new(BufReader::new(file));
    let mut core = OutOfOrderCore::new(machine.config.clone(), trace);
    core.run(params.warmup);
    let r = core.run(params.measure);
    println!(
        "{path}: {} instructions measured at t_useful {t} FO4: IPC {:.3}  BIPS {:.3}",
        r.instructions,
        r.ipc(),
        r.bips(machine.period_ps())
    );
    ExitCode::SUCCESS
}

fn cmd_report(mut args: Vec<String>) -> ExitCode {
    take_jobs(&mut args);
    let core = match take_opt::<String>(&mut args, "--core").as_deref() {
        None | Some("ooo") => CoreKind::OutOfOrder,
        Some("inorder") => CoreKind::InOrder,
        Some(other) => {
            eprintln!("unknown core {other}");
            return ExitCode::from(2);
        }
    };
    let quick = take_flag(&mut args, "--quick");
    let out_path = take_opt::<String>(&mut args, "--out");
    let mut params = params_from(&mut args);
    if quick {
        // Short intervals and three representative clock points: enough for
        // CI and smoke checks; the counters and identity are still exact.
        params.warmup = params.warmup.min(2_000);
        params.measure = params.measure.min(8_000);
    }
    let points: Vec<Fo4> = match take_opt::<String>(&mut args, "--points") {
        Some(list) => {
            let mut out = Vec::new();
            for raw in list.split(',') {
                match raw.parse::<f64>() {
                    Ok(v) if v > 0.0 => out.push(Fo4::new(v)),
                    _ => {
                        eprintln!("bad clock point {raw}");
                        return ExitCode::from(2);
                    }
                }
            }
            out
        }
        None if quick => [4.0, 6.0, 8.0].into_iter().map(Fo4::new).collect(),
        None => standard_points(),
    };
    let profs = match take_opt::<String>(&mut args, "--bench") {
        Some(names) => {
            let mut out = Vec::new();
            for n in names.split(',') {
                match profiles::by_name(n) {
                    Some(p) => out.push(p),
                    None => {
                        eprintln!("unknown benchmark {n}");
                        return ExitCode::from(2);
                    }
                }
            }
            out
        }
        None => profiles::all(),
    };
    let doc = report::generate(core, &profs, &params, &points);
    let text = doc.pretty();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{text}"),
    }
    ExitCode::SUCCESS
}

/// The fixed benchmarking workload: the full depth sweep at the paper's
/// overhead, timed wall-clock, reported as deterministic-schema JSON so CI
/// can track simulation throughput run-over-run. Trace generation
/// (materializing the benchmark arenas, paid once and shared by every core
/// and clock point) is timed separately from simulation.
fn cmd_perf(mut args: Vec<String>) -> ExitCode {
    use fo4depth::util::json::Json;

    take_jobs(&mut args);
    let quick = take_flag(&mut args, "--quick");
    let out_path = take_opt::<String>(&mut args, "--out");
    let cores: Vec<CoreKind> = match take_opt::<String>(&mut args, "--core").as_deref() {
        None | Some("both") => vec![CoreKind::OutOfOrder, CoreKind::InOrder],
        Some("ooo") => vec![CoreKind::OutOfOrder],
        Some("inorder") => vec![CoreKind::InOrder],
        Some(other) => {
            eprintln!("unknown core {other}");
            return ExitCode::from(2);
        }
    };
    let params = if quick {
        SimParams {
            warmup: 2_000,
            measure: 8_000,
            seed: 1,
        }
    } else {
        SimParams {
            warmup: 10_000,
            measure: 40_000,
            seed: 1,
        }
    };
    let profs = profiles::all();
    let points = standard_points();
    let structures = StructureSet::alpha_21264();
    let pool = fo4depth::exec::global();
    let start = std::time::Instant::now();
    let arenas = build_arenas(&profs, &params, pool);
    let trace_gen = start.elapsed().as_secs_f64();
    let mut sweeps = Vec::new();
    let (mut total_cycles, mut total_rate) = (0u64, 0.0f64);
    for &core in &cores {
        let spec = SweepSpec {
            core,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points: &points,
            observed: false,
        };
        let sim_start = std::time::Instant::now();
        let sweep = depth_sweep_arenas(&spec, &arenas, pool);
        let sim = sim_start.elapsed().as_secs_f64();
        let (mut cycles, mut instructions) = (0u64, 0u64);
        for p in &sweep.points {
            for o in &p.outcomes {
                cycles += o.result.cycles;
                instructions += o.result.instructions;
            }
        }
        let (opt_t, opt_bips) = sweep.optimum(None);
        total_cycles += cycles;
        total_rate = cycles as f64 / sim;
        sweeps.push(Json::obj(vec![
            (
                "core",
                Json::str(match core {
                    CoreKind::OutOfOrder => "ooo",
                    CoreKind::InOrder => "inorder",
                }),
            ),
            ("sim_seconds", Json::Num(sim)),
            ("simulated_cycles", Json::uint(cycles)),
            ("simulated_instructions", Json::uint(instructions)),
            (
                "simulated_cycles_per_second",
                Json::Num(cycles as f64 / sim),
            ),
            (
                "simulated_instructions_per_second",
                Json::Num(instructions as f64 / sim),
            ),
            (
                "optimum",
                Json::obj(vec![
                    ("t_useful", Json::Num(opt_t)),
                    ("bips", Json::Num(opt_bips)),
                ]),
            ),
        ]));
    }
    let wall = start.elapsed().as_secs_f64();
    let doc = Json::obj(vec![
        ("schema_version", Json::Int(2)),
        (
            "workload",
            Json::obj(vec![
                (
                    "cores",
                    Json::Arr(
                        cores
                            .iter()
                            .map(|c| {
                                Json::str(match c {
                                    CoreKind::OutOfOrder => "ooo",
                                    CoreKind::InOrder => "inorder",
                                })
                            })
                            .collect(),
                    ),
                ),
                (
                    "points",
                    Json::Arr(points.iter().map(|t| Json::Num(t.get())).collect()),
                ),
                (
                    "benchmarks",
                    Json::Arr(profs.iter().map(|p| Json::str(&p.name)).collect()),
                ),
                ("warmup", Json::uint(params.warmup)),
                ("measure", Json::uint(params.measure)),
                ("seed", Json::uint(params.seed)),
            ]),
        ),
        (
            "jobs",
            Json::uint(fo4depth::exec::global().threads() as u64),
        ),
        ("trace_gen_seconds", Json::Num(trace_gen)),
        ("wall_seconds", Json::Num(wall)),
        ("sweeps", Json::Arr(sweeps)),
    ]);
    let text = doc.pretty();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path}: {wall:.3} s wall ({trace_gen:.3} s trace gen), \
                 {total_cycles} cycles, last sweep {total_rate:.0} cycles/s"
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_floorplan() -> ExitCode {
    let plan = Floorplan::of(
        &fo4depth::study::capacity::CapacityChoice::base(),
        TechNode::NM_100,
    );
    println!("Alpha-class floorplan at 100 nm (fo4depth-cacti area model):");
    println!("  DL1        {:>7.2} mm2", plan.dcache_mm2);
    println!("  I-cache    {:>7.2} mm2", plan.icache_mm2);
    println!("  L2 (2 MB)  {:>7.2} mm2", plan.l2_mm2);
    println!("  window     {:>7.2} mm2", plan.window_mm2);
    println!("  regfiles   {:>7.2} mm2", plan.regfiles_mm2);
    println!("  predictor  {:>7.2} mm2", plan.predictor_mm2);
    println!(
        "  core total {:>7.2} mm2  (span {:.2} mm)",
        plan.core_mm2,
        plan.core_span_mm()
    );
    println!(
        "  die total  {:>7.2} mm2  (span {:.2} mm)",
        plan.total_mm2,
        plan.die_span_mm()
    );
    let model = fo4depth_fo4::WireModel::default();
    println!(
        "  front-end transport: {:.2} mm = {:.1} FO4 of repeated wire",
        plan.front_end_distance_mm(),
        plan.front_end_wire_fo4(&model).get()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "table3" => {
            print!("{}", render::table3(&table3(&StructureSet::alpha_21264())));
            ExitCode::SUCCESS
        }
        "sweep" => cmd_sweep(args),
        "bench" => cmd_bench(args),
        "record" => cmd_record(args),
        "replay" => cmd_replay(args),
        "validate" => {
            let params = SimParams {
                warmup: 30_000,
                measure: 60_000,
                seed: 1,
            };
            let rows = validation::validate_all(&params, &Bands::default());
            print!("{}", validation::render(&rows));
            ExitCode::SUCCESS
        }
        "floorplan" => cmd_floorplan(),
        "report" => cmd_report(args),
        "perf" => cmd_perf(args),
        "experiments" => {
            for e in registry() {
                println!(
                    "{:16} {}\n{:16} paper: {}\n{:16} run:   {}\n",
                    e.id, e.title, "", e.paper, "", e.target
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
