//! The fo4depth command-line tool: run the study's pieces individually.
//!
//! ```text
//! fo4depth table3                               # print Table 3
//! fo4depth sweep --core ooo --measure 40000     # depth sweep (text + CSV)
//! fo4depth bench 181.mcf --t-useful 6           # one benchmark, one clock
//! fo4depth record 164.gzip 1000 trace.txt       # capture a trace
//! fo4depth replay trace.txt --t-useful 6        # drive the core with it
//! fo4depth validate                             # workload calibration table
//! fo4depth floorplan                            # areas and wire distances
//! fo4depth experiments                          # the paper's experiment registry
//! fo4depth report --quick                       # machine-readable JSON run report
//! fo4depth serve --addr 127.0.0.1:7634          # simulation-as-a-service daemon
//! fo4depth route --shard HOST:PORT [...]        # consistent-hash routing tier
//! ```
//!
//! Argument parsing is strict: unknown subcommands, unknown flags, and
//! malformed values exit with status 2 and a message naming the problem
//! (see [`fo4depth::util::args`]).

use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

use fo4depth::fo4::Fo4;
use fo4depth::serve::client::{InjectedNetFault, ScriptedNetFaults};
use fo4depth::serve::store::{self, FsyncPolicy};
use fo4depth::serve::{ServeConfig, Server};
use fo4depth::study::adaptive::AdaptiveConfig;
use fo4depth::study::experiments::registry;
use fo4depth::study::floorplan::Floorplan;
use fo4depth::study::latency::{table3, StructureSet};
use fo4depth::study::render;
use fo4depth::study::report;
use fo4depth::study::scaler::ScaledMachine;
use fo4depth::study::sim::{run_inorder, run_ooo, SimParams};
use fo4depth::study::sweep::{
    adaptive_sweep_arenas, adaptive_sweep_spec, auto_lanes, build_arenas, depth_sweep_arenas,
    depth_sweep_arenas_batched, depth_sweep_spec, depth_sweep_spec_batched, standard_points,
    AdaptiveSweep, CoreKind, DepthSweep, SweepSpec,
};
use fo4depth::study::validation::{self, Bands};
use fo4depth::study::yield_sweep::yield_sweep_spec;
use fo4depth::util::args::{ArgError, Args};
use fo4depth::variation::{DistKind, VariationSpec};
use fo4depth::workload::{profiles, BenchProfile, TraceArena, TraceGenerator, TraceReader};
use fo4depth_fo4::TechNode;
use fo4depth_pipeline::OutOfOrderCore;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fo4depth <command> [options]\n\
         commands:\n\
           table3                          print the structure/operation latency table\n\
           sweep [--core ooo|inorder] [--overhead F] [--quick] [--warmup N]\n\
                 [--measure N] [--bench NAME[,NAME...]] [--csv] [--jobs N]\n\
                 [--batch-lanes N|on|max|auto|off] [--sweep-mode dense|adaptive]\n\
                 [--tolerance FO4] [--coarse-step N] [--seed-clock FO4]\n\
           bench NAME [--t-useful F] [--warmup N] [--measure N]\n\
           record NAME COUNT [FILE]        capture a synthetic trace (default stdout)\n\
           replay FILE [--t-useful F]      run the out-of-order core on a trace file\n\
           validate                        workload calibration at the Alpha point\n\
           floorplan                       structure areas and wire distances\n\
           experiments                     list the paper's experiments\n\
           yield [--core ooo|inorder] [--overhead F] [--quick] [--warmup N]\n\
                 [--measure N] [--seed N] [--bench NAME[,NAME...]] [--samples N]\n\
                 [--variation-seed N] [--distribution normal|lognormal|uniform]\n\
                 [--sigma-fo4 F] [--sigma-overhead F] [--systematic-fo4 F]\n\
                 [--systematic-overhead F] [--logic-depth F] [--guardband F]\n\
                 [--jobs N] [--batch-lanes N|on|max|auto|off]\n\
                  yield-aware depth sweep: Monte Carlo over process\n\
                  variation plus the variance-propagation fast path;\n\
                  reports per-point yield curves and the yield-weighted\n\
                  optimum alongside the nominal one\n\
           report [--core ooo|inorder] [--bench NAME[,NAME...]] [--points F[,F...]]\n\
                  [--quick] [--warmup N] [--measure N] [--seed N] [--out FILE] [--jobs N]\n\
                  [--batch-lanes N|on|max|auto|off] [--sweep-mode dense|adaptive]\n\
                  [--tolerance FO4] [--coarse-step N] [--seed-clock FO4]\n\
                  emit a machine-readable JSON run report (counters + CPI stacks)\n\
           perf [--core ooo|inorder|both] [--quick] [--jobs N] [--out FILE]\n\
                [--batch-lanes N|on|max|auto|off] [--sweep-mode dense|adaptive]\n\
                [--tolerance FO4] [--coarse-step N] [--seed-clock FO4] [--shards N]\n\
                  time the fixed sweep workload (trace generation and\n\
                  simulation split out); emit a JSON bench report; unless\n\
                  --batch-lanes off, also time the lane-batched engine and\n\
                  verify it against the scalar sweep bit-for-bit; unless\n\
                  --sweep-mode dense, also time the adaptive planner and\n\
                  verify it lands on the dense optimum; with --shards N,\n\
                  also time the routed full-OOO sweep through 1 vs N\n\
                  fresh shard subprocesses and verify byte-identity\n\
           serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]\n\
                 [--cell-cache N] [--max-body BYTES] [--timeout-ms N]\n\
                 [--deadline-ms N] [--cache-dir DIR] [--fsync always|batch|off]\n\
                 [--jobs N]\n\
                  run the HTTP simulation service (caching, coalescing,\n\
                  backpressure; SIGTERM drains and exits); --cache-dir\n\
                  persists cell outcomes across restarts\n\
           route --shard HOST:PORT [--shard HOST:PORT ...] [serve options]\n\
                 [--shard-connections N] [--shard-retries N] [--shard-backoff-ms N]\n\
                 [--shard-timeout-ms N] [--ring-replicas N] [--replication R]\n\
                 [--net-faults SPEC]\n\
                  front a fleet of serve shards: the same HTTP surface,\n\
                  with cell simulation scattered to the owning shards by\n\
                  consistent hashing and gathered back byte-identically;\n\
                  --replication R serves each cell from any of its first\n\
                  R ring successors (reads balanced two-choices, records\n\
                  fanned out so every replica stays warm); POST /v1/ring\n\
                  adds/removes shards at runtime; dead shards fail over\n\
                  to ring successors, then local compute; --net-faults\n\
                  scripts deterministic scatter-path failures (comma-\n\
                  separated connect-refuse|connect-pass|read-hang|\n\
                  read-truncate|read-garbage|read-pass, consumed FIFO\n\
                  per operation) for chaos drills\n\
           cache <stat|verify|compact> --cache-dir DIR\n\
                  inspect or rewrite the persistent cell cache offline\n\
         `--jobs N` sizes the shared execution pool (1 = serial); the\n\
         FO4DEPTH_THREADS env var sets the default"
    );
    ExitCode::from(2)
}

/// Applies `--jobs N` to the shared execution pool. Must run before the
/// first pool use; a pool that is already built at a different size cannot
/// be resized, so that case warns instead of silently mis-running.
fn apply_jobs(args: &mut Args) -> Result<(), ArgError> {
    if let Some(n) = args.take_opt::<usize>("--jobs")? {
        if n == 0 {
            return Err(ArgError("--jobs needs a positive value".into()));
        }
        if !fo4depth::exec::set_global_threads(n) {
            eprintln!("warning: execution pool already running; --jobs {n} ignored");
        }
    }
    Ok(())
}

fn params_from(args: &mut Args) -> Result<SimParams, ArgError> {
    let mut p = SimParams {
        warmup: 10_000,
        measure: 40_000,
        seed: 1,
    };
    if let Some(w) = args.take_opt("--warmup")? {
        p.warmup = w;
    }
    if let Some(m) = args.take_opt("--measure")? {
        p.measure = m;
    }
    if let Some(s) = args.take_opt("--seed")? {
        p.seed = s;
    }
    Ok(p)
}

/// Parses `--core` with the given `extra` spelling(s) allowed (perf takes
/// `both`; everything else does not).
fn core_from(args: &mut Args) -> Result<CoreKind, ArgError> {
    match args.take_opt::<String>("--core")?.as_deref() {
        None | Some("ooo") => Ok(CoreKind::OutOfOrder),
        Some("inorder") => Ok(CoreKind::InOrder),
        Some(other) => Err(ArgError(format!(
            "unknown core {other}; expected ooo or inorder"
        ))),
    }
}

/// Parses `--bench NAME[,NAME...]`, defaulting to every benchmark.
fn benches_from(args: &mut Args) -> Result<Vec<BenchProfile>, ArgError> {
    match args.take_opt::<String>("--bench")? {
        Some(names) => names
            .split(',')
            .map(|n| {
                profiles::by_name(n).ok_or_else(|| {
                    ArgError(format!(
                        "unknown benchmark {n}; try `fo4depth validate` for the list"
                    ))
                })
            })
            .collect(),
        None => Ok(profiles::all()),
    }
}

/// How `--batch-lanes` sizes the lane-batched engine's point batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneMode {
    /// The scalar reference path.
    Off,
    /// All of a benchmark's clock points in one batch.
    Max,
    /// A fixed lane cap.
    Fixed(usize),
    /// The per-core measured-best cap ([`auto_lanes`]): every point for
    /// the out-of-order core, at most four lanes for the in-order core.
    Auto,
}

impl LaneMode {
    /// The lane cap for one core's sweep over `points` clock points, or
    /// `None` for the scalar path.
    fn resolve(self, core: CoreKind, points: usize) -> Option<usize> {
        match self {
            LaneMode::Off => None,
            LaneMode::Max => Some(points.max(1)),
            LaneMode::Fixed(n) => Some(n.min(points.max(1))),
            LaneMode::Auto => Some(auto_lanes(core, points)),
        }
    }
}

/// Parses `--batch-lanes N|on|max|auto|off`. `on` and `max` mean "all of a
/// benchmark's clock points in one batch"; `auto` picks the per-core
/// measured-best cap. `default` applies when the flag is absent.
fn batch_lanes_from(args: &mut Args, default: LaneMode) -> Result<LaneMode, ArgError> {
    match args.take_opt::<String>("--batch-lanes")? {
        None => Ok(default),
        Some(v) => match v.as_str() {
            "off" => Ok(LaneMode::Off),
            "on" | "max" => Ok(LaneMode::Max),
            "auto" => Ok(LaneMode::Auto),
            n => match n.parse::<usize>() {
                Ok(n) if n > 0 => Ok(LaneMode::Fixed(n)),
                _ => Err(ArgError(format!(
                    "bad --batch-lanes {n}; expected a positive lane count, on, max, auto, or off"
                ))),
            },
        },
    }
}

/// Which planning strategy a sweep-shaped command uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepMode {
    Dense,
    Adaptive,
}

/// Parses `--sweep-mode dense|adaptive` plus the adaptive knobs
/// (`--tolerance FO4`, `--coarse-step N`, `--seed-clock FO4`). The knobs
/// are accepted — and validated — even in dense mode so scripts can flip
/// modes without editing flags. `default` applies when the flag is absent
/// (`sweep`/`report` default dense; `perf` defaults adaptive so the
/// planner is benchmarked and verified on every run).
fn sweep_mode_from(
    args: &mut Args,
    default: SweepMode,
) -> Result<(SweepMode, AdaptiveConfig), ArgError> {
    let mode = match args.take_opt::<String>("--sweep-mode")?.as_deref() {
        None => default,
        Some("dense") => SweepMode::Dense,
        Some("adaptive") => SweepMode::Adaptive,
        Some(other) => {
            return Err(ArgError(format!(
                "unknown sweep mode {other}; expected dense or adaptive"
            )));
        }
    };
    let mut config = AdaptiveConfig::default();
    if let Some(t) = args.take_opt::<f64>("--tolerance")? {
        if !t.is_finite() || t < 0.0 {
            return Err(ArgError(format!(
                "bad --tolerance {t}; expected a non-negative FO4 width"
            )));
        }
        config.tolerance = t;
    }
    if let Some(s) = args.take_opt::<usize>("--coarse-step")? {
        config.coarse_step = s;
    }
    if let Some(seed) = args.take_opt::<f64>("--seed-clock")? {
        if !seed.is_finite() || seed <= 0.0 {
            return Err(ArgError(format!(
                "bad --seed-clock {seed}; expected a positive FO4 clock"
            )));
        }
        config.seed = Some(seed);
    }
    Ok((mode, config))
}

/// One-line search summary printed (to stderr, so CSV/JSON pipes stay
/// clean) after an adaptive run.
fn adaptive_summary(a: &AdaptiveSweep) {
    eprintln!(
        "adaptive: probed {}/{} points in {} rounds (seed {:.2} FO4): \
         {} cells simulated vs {} dense ({} saved)",
        a.stats.probed_points,
        a.stats.dense_points,
        a.stats.rounds,
        a.stats.seed_t,
        a.cells_simulated,
        a.cells_dense,
        a.cells_dense.saturating_sub(a.cells_simulated)
    );
}

fn cmd_sweep(mut args: Args) -> Result<ExitCode, ArgError> {
    apply_jobs(&mut args)?;
    let core = core_from(&mut args)?;
    let overhead = args.take_opt("--overhead")?.unwrap_or(1.8);
    let csv = args.take_flag("--csv");
    let quick = args.take_flag("--quick");
    // Default off: the scalar path is the reference implementation; the
    // batched engine is opt-in here (perf defaults it on and verifies).
    let batch = batch_lanes_from(&mut args, LaneMode::Off)?;
    let (mode, adaptive_config) = sweep_mode_from(&mut args, SweepMode::Dense)?;
    let mut params = params_from(&mut args)?;
    if quick {
        params.warmup = params.warmup.min(2_000);
        params.measure = params.measure.min(8_000);
    }
    let profs = benches_from(&mut args)?;
    args.finish()?;
    let structures = StructureSet::alpha_21264();
    let points = standard_points();
    let spec = SweepSpec {
        core,
        profiles: &profs,
        params: &params,
        structures: &structures,
        overhead: Fo4::new(overhead),
        points: &points,
        observed: false,
    };
    let pool = fo4depth::exec::global();
    let lanes = batch.resolve(core, points.len());
    let sweep = match mode {
        SweepMode::Dense => match lanes {
            Some(lanes) => depth_sweep_spec_batched(&spec, pool, lanes),
            None => depth_sweep_spec(&spec, pool),
        },
        SweepMode::Adaptive => {
            let adaptive = adaptive_sweep_spec(&spec, pool, lanes, &adaptive_config);
            adaptive_summary(&adaptive);
            adaptive.sweep
        }
    };
    if csv {
        print!("{}", render::sweep_csv(&sweep));
    } else {
        print!("{}", render::sweep_table(&sweep));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench(mut args: Args) -> Result<ExitCode, ArgError> {
    let t = args.take_opt("--t-useful")?.unwrap_or(6.0);
    let params = params_from(&mut args)?;
    let name = args
        .take_positional()
        .ok_or_else(|| ArgError("bench needs a benchmark name".into()))?;
    args.finish()?;
    let Some(profile) = profiles::by_name(&name) else {
        return Err(ArgError(format!(
            "unknown benchmark {name}; try `fo4depth validate` for the list"
        )));
    };
    let machine = ScaledMachine::at(&StructureSet::alpha_21264(), Fo4::new(t), Fo4::new(1.8));
    let arena = Arc::new(TraceArena::generate(
        profile,
        params.seed,
        params.trace_len(),
    ));
    let ooo = run_ooo(&machine.config, &arena, &params);
    let ino = run_inorder(&machine.config, &arena, &params);
    println!(
        "{name} at t_useful {t} FO4 ({:.2} GHz at 100 nm):",
        1000.0 / machine.period_ps()
    );
    println!(
        "  out-of-order: IPC {:.3}  BIPS {:.3}  mispredict {:.3}  L1 miss {:.3}",
        ooo.result.ipc(),
        ooo.result.bips(machine.period_ps()),
        ooo.result.mispredict_rate(),
        ooo.result.l1.miss_rate()
    );
    println!(
        "  in-order:     IPC {:.3}  BIPS {:.3}",
        ino.result.ipc(),
        ino.result.bips(machine.period_ps())
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_record(mut args: Args) -> Result<ExitCode, ArgError> {
    let name = args
        .take_positional()
        .ok_or_else(|| ArgError("record needs NAME and COUNT".into()))?;
    let count = args
        .take_positional()
        .ok_or_else(|| ArgError("record needs NAME and COUNT".into()))?;
    let path = args.take_positional();
    args.finish()?;
    let Some(profile) = profiles::by_name(&name) else {
        return Err(ArgError(format!("unknown benchmark {name}")));
    };
    let Ok(count) = count.parse::<usize>() else {
        return Err(ArgError(format!("bad count {count}")));
    };
    let stream = TraceGenerator::new(profile, 1);
    let result = match path {
        Some(path) => {
            let file = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            fo4depth::workload::record(stream, count, std::io::BufWriter::new(file))
        }
        None => fo4depth::workload::record(stream, count, std::io::stdout().lock()),
    };
    match result {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("write failed: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_replay(mut args: Args) -> Result<ExitCode, ArgError> {
    let t = args.take_opt("--t-useful")?.unwrap_or(6.0);
    let mut params = params_from(&mut args)?;
    let path = args
        .take_positional()
        .ok_or_else(|| ArgError("replay needs a trace FILE".into()))?;
    args.finish()?;
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    // A finite file cannot satisfy an open-ended run; bound the interval by
    // a cheap line count first.
    let lines = match std::fs::read_to_string(&path) {
        Ok(s) => s
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count() as u64,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    if lines < 100 {
        eprintln!("trace too short ({lines} instructions)");
        return Ok(ExitCode::FAILURE);
    }
    params.warmup = params.warmup.min(lines / 4);
    params.measure = params.measure.min(lines - params.warmup - lines / 10);

    let machine = ScaledMachine::at(&StructureSet::alpha_21264(), Fo4::new(t), Fo4::new(1.8));
    let trace = TraceReader::new(BufReader::new(file));
    let mut core = OutOfOrderCore::new(machine.config.clone(), trace);
    core.run(params.warmup);
    let r = core.run(params.measure);
    println!(
        "{path}: {} instructions measured at t_useful {t} FO4: IPC {:.3}  BIPS {:.3}",
        r.instructions,
        r.ipc(),
        r.bips(machine.period_ps())
    );
    Ok(ExitCode::SUCCESS)
}

/// Parses the `--samples`/`--variation-seed`/`--distribution`/`--sigma-*`
/// knobs into a [`VariationSpec`], validated.
fn variation_from(args: &mut Args) -> Result<VariationSpec, ArgError> {
    let mut v = VariationSpec::new(args.take_opt("--variation-seed")?.unwrap_or(1));
    if let Some(n) = args.take_opt::<u32>("--samples")? {
        v.samples = n;
    }
    if let Some(kind) = args.take_opt::<String>("--distribution")? {
        let kind = DistKind::parse(&kind).map_err(|e| ArgError(e.message().to_string()))?;
        for c in [&mut v.fo4, &mut v.latch, &mut v.skew, &mut v.jitter] {
            c.kind = kind;
        }
    }
    if let Some(sigma) = args.take_opt::<f64>("--sigma-fo4")? {
        v.fo4.sigma = sigma;
    }
    if let Some(sigma) = args.take_opt::<f64>("--sigma-overhead")? {
        for c in [&mut v.latch, &mut v.skew, &mut v.jitter] {
            c.sigma = sigma;
        }
    }
    if let Some(share) = args.take_opt::<f64>("--systematic-fo4")? {
        v.fo4.systematic = share;
    }
    if let Some(share) = args.take_opt::<f64>("--systematic-overhead")? {
        for c in [&mut v.latch, &mut v.skew, &mut v.jitter] {
            c.systematic = share;
        }
    }
    if let Some(depth) = args.take_opt::<f64>("--logic-depth")? {
        v.logic_depth = depth;
    }
    if let Some(guardband) = args.take_opt::<f64>("--guardband")? {
        v.guardband = guardband;
    }
    v.validate()
        .map_err(|e| ArgError(e.message().to_string()))?;
    Ok(v)
}

/// The yield-aware depth sweep: Monte Carlo over process variation plus
/// the moment-propagation fast path, through the same cell machinery as
/// every other sweep.
fn cmd_yield(mut args: Args) -> Result<ExitCode, ArgError> {
    apply_jobs(&mut args)?;
    let core = core_from(&mut args)?;
    let overhead = args.take_opt("--overhead")?.unwrap_or(1.8);
    let quick = args.take_flag("--quick");
    let batch = batch_lanes_from(&mut args, LaneMode::Off)?;
    let mut variation = variation_from(&mut args)?;
    let mut params = params_from(&mut args)?;
    if quick {
        params.warmup = params.warmup.min(2_000);
        params.measure = params.measure.min(8_000);
        variation.samples = variation.samples.min(32);
    }
    let profs = benches_from(&mut args)?;
    args.finish()?;
    let structures = StructureSet::alpha_21264();
    let points = standard_points();
    let spec = SweepSpec {
        core,
        profiles: &profs,
        params: &params,
        structures: &structures,
        overhead: Fo4::new(overhead),
        points: &points,
        observed: false,
    };
    let pool = fo4depth::exec::global();
    let lanes = batch.resolve(core, points.len());
    let sweep = yield_sweep_spec(&spec, variation, pool, lanes)
        .map_err(|e| ArgError(e.message().to_string()))?;
    println!(
        "yield-aware depth sweep: {} core, overhead {overhead} FO4, {} dies (seed {})",
        match core {
            CoreKind::OutOfOrder => "out-of-order",
            CoreKind::InOrder => "in-order",
        },
        sweep.samples,
        variation.seed
    );
    println!(
        "{:>8}  {:>9}  {:>8}  {:>8}  {:>10}  {:>9}  {:>11}",
        "t_useful", "period_ps", "bips_nom", "yield_mc", "yield_fast", "ywbips_mc", "ywbips_fast"
    );
    for p in &sweep.points {
        println!(
            "{:>8.2}  {:>9.1}  {:>8.3}  {:>8.3}  {:>10.3}  {:>9.3}  {:>11.3}",
            p.t_useful,
            p.period_ps,
            p.bips_nominal,
            p.yield_mc,
            p.yield_fast,
            p.ywbips_mc,
            p.ywbips_fast
        );
    }
    let (nom_t, nom_bips) = sweep.nominal_optimum();
    let (mc_t, mc_bips) = sweep.yield_optimum_mc();
    let (fast_t, fast_bips) = sweep.yield_optimum_fast();
    let agreement = sweep.agreement();
    println!("nominal optimum:      {nom_t} FO4 useful ({nom_bips:.3} BIPS)");
    println!("yield optimum (MC):   {mc_t} FO4 useful ({mc_bips:.3} yield-weighted BIPS)");
    println!("yield optimum (fast): {fast_t} FO4 useful ({fast_bips:.3} yield-weighted BIPS)");
    println!(
        "fast vs MC: max |yield error| {:.3}, optimum {} grid step(s) apart",
        agreement.max_yield_abs_err,
        agreement.optimum_step_delta.abs()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_report(mut args: Args) -> Result<ExitCode, ArgError> {
    apply_jobs(&mut args)?;
    let core = core_from(&mut args)?;
    let quick = args.take_flag("--quick");
    let out_path = args.take_opt::<String>("--out")?;
    // Default off, like `sweep`: the scalar path is the reference.
    let batch = batch_lanes_from(&mut args, LaneMode::Off)?;
    let (mode, adaptive_config) = sweep_mode_from(&mut args, SweepMode::Dense)?;
    let mut params = params_from(&mut args)?;
    if quick {
        // Short intervals and three representative clock points: enough for
        // CI and smoke checks; the counters and identity are still exact.
        params.warmup = params.warmup.min(2_000);
        params.measure = params.measure.min(8_000);
    }
    let points: Vec<Fo4> = match args.take_opt::<String>("--points")? {
        Some(list) => list
            .split(',')
            .map(|raw| match raw.parse::<f64>() {
                Ok(v) if v > 0.0 => Ok(Fo4::new(v)),
                _ => Err(ArgError(format!("bad clock point {raw}"))),
            })
            .collect::<Result<_, _>>()?,
        None if quick => [4.0, 6.0, 8.0].into_iter().map(Fo4::new).collect(),
        None => standard_points(),
    };
    let profs = benches_from(&mut args)?;
    args.finish()?;
    if mode == SweepMode::Adaptive && !points.windows(2).all(|w| w[0].get() < w[1].get()) {
        return Err(ArgError(
            "--sweep-mode adaptive needs strictly increasing --points".into(),
        ));
    }
    let lanes = batch.resolve(core, points.len());
    let structures = StructureSet::alpha_21264();
    let spec = SweepSpec {
        core,
        profiles: &profs,
        params: &params,
        structures: &structures,
        overhead: Fo4::new(1.8),
        points: &points,
        observed: true,
    };
    let doc = match mode {
        SweepMode::Adaptive => {
            let adaptive =
                adaptive_sweep_spec(&spec, fo4depth::exec::global(), lanes, &adaptive_config);
            report::adaptive_sweep_json(&adaptive, &params)
        }
        SweepMode::Dense => match lanes {
            Some(lanes) => {
                let sweep = depth_sweep_spec_batched(&spec, fo4depth::exec::global(), lanes);
                report::sweep_json(&sweep, &params)
            }
            None => report::generate(core, &profs, &params, &points),
        },
    };
    let text = doc.pretty();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("cannot write {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        }
        None => println!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// One `fo4depth serve` shard subprocess for the perf harness, killed on
/// drop so a panicking run cannot leak children.
struct ShardProc {
    child: std::process::Child,
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one shard of this same binary on an ephemeral port and waits for
/// its `listening on ADDR` banner.
fn spawn_shard(jobs: usize) -> Result<(ShardProc, String), ArgError> {
    use std::io::BufRead as _;
    let exe = std::env::current_exe()
        .map_err(|e| ArgError(format!("cannot locate the fo4depth binary: {e}")))?;
    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            &jobs.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| ArgError(format!("cannot spawn shard: {e}")))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let proc = ShardProc { child };
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| ArgError(format!("shard produced no address: {e}")))?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| ArgError(format!("unexpected shard banner {line:?}")))?
        .to_string();
    Ok((proc, addr))
}

/// Times the routed full-OOO sweep through one shard vs `shards` shards.
/// Both measurements use fresh shard subprocesses and fresh router engines,
/// so both are equally cold; each shard gets the router's own `--jobs`, so
/// the fleet's advantage is pure horizontal scale. Byte-identity against
/// the local scalar `reference` sweep is asserted, not sampled.
fn shard_perf(
    shards: usize,
    params: &SimParams,
    reference: Option<&DepthSweep>,
) -> Result<fo4depth::util::json::Json, ArgError> {
    use fo4depth::serve::api::{RequestLimits, SweepRequest};
    use fo4depth::util::json::Json;

    let jobs = fo4depth::exec::global().threads();
    let spec = Json::obj(vec![
        ("core", Json::str("ooo")),
        ("warmup", Json::uint(params.warmup)),
        ("measure", Json::uint(params.measure)),
        ("seed", Json::uint(params.seed)),
    ]);
    let req = SweepRequest::from_json(&spec, &RequestLimits::default())
        .expect("perf sweep spec is valid");

    let route_through = |addrs: Vec<String>| -> Result<(DepthSweep, f64), ArgError> {
        let config = ServeConfig {
            shards: addrs,
            ..ServeConfig::default()
        };
        let engine = fo4depth::serve::build_engine(&config)
            .map_err(|e| ArgError(format!("cannot build router engine: {e}")))?;
        let start = std::time::Instant::now();
        let sweep = engine.sweep(&req, false);
        Ok((sweep, start.elapsed().as_secs_f64()))
    };

    // Baseline: the whole keyspace on one shard. The wall clock starts
    // before the spawn so `*_wall_seconds` prices the whole deployment
    // (subprocess startup included), where `*_sim_seconds` prices only the
    // routed sweep — the gap between them is the fleet's fixed cost.
    let single_wall_start = std::time::Instant::now();
    let (single_proc, single_addr) = spawn_shard(jobs)?;
    let (single_sweep, single_sim) = route_through(vec![single_addr])?;
    let single_wall = single_wall_start.elapsed().as_secs_f64();
    drop(single_proc);

    // The fleet: fresh processes, so the sharded run is just as cold.
    let fleet_wall_start = std::time::Instant::now();
    let fleet: Vec<(ShardProc, String)> = (0..shards)
        .map(|_| spawn_shard(jobs))
        .collect::<Result<_, _>>()?;
    let addrs = fleet.iter().map(|(_, a)| a.clone()).collect();
    let (fleet_sweep, fleet_sim) = route_through(addrs)?;
    let fleet_wall = fleet_wall_start.elapsed().as_secs_f64();
    drop(fleet);

    assert_eq!(
        single_sweep, fleet_sweep,
        "sharded sweep diverged from the single-shard sweep"
    );
    if let Some(reference) = reference {
        assert_eq!(
            &fleet_sweep, reference,
            "routed sweep diverged from the local scalar reference"
        );
    }
    let speedup = single_sim / fleet_sim;
    // Horizontal scale needs physical cores: on a `cpus`-core machine the
    // ceiling is min(shards, cpus / jobs), so the report records the
    // machine alongside the measurement.
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "sharding: {shards} shards {fleet_sim:.3} s vs 1 shard {single_sim:.3} s \
         ({speedup:.2}x) at --jobs {jobs} per shard on {cpus} cpus"
    );
    Ok(Json::obj(vec![
        ("shards", Json::uint(shards as u64)),
        ("jobs_per_shard", Json::uint(jobs as u64)),
        ("cpus", Json::uint(cpus as u64)),
        ("single_shard_sim_seconds", Json::Num(single_sim)),
        ("sharded_sim_seconds", Json::Num(fleet_sim)),
        ("single_shard_wall_seconds", Json::Num(single_wall)),
        ("sharded_wall_seconds", Json::Num(fleet_wall)),
        ("shard_speedup", Json::Num(speedup)),
    ]))
}

/// The fixed benchmarking workload: the full depth sweep at the paper's
/// overhead, timed wall-clock, reported as deterministic-schema JSON so CI
/// can track simulation throughput run-over-run. Trace generation
/// (materializing the benchmark arenas, paid once and shared by every core
/// and clock point) is timed separately from simulation.
fn cmd_perf(mut args: Args) -> Result<ExitCode, ArgError> {
    use fo4depth::util::json::Json;

    apply_jobs(&mut args)?;
    let quick = args.take_flag("--quick");
    let out_path = args.take_opt::<String>("--out")?;
    // Default on: every perf run times the batched engine alongside the
    // scalar reference and asserts they agree bit-for-bit.
    let batch = batch_lanes_from(&mut args, LaneMode::Max)?;
    // Default adaptive: every perf run also times the adaptive planner and
    // asserts it lands on the dense optimum. `--sweep-mode dense` skips it.
    let (mode, adaptive_config) = sweep_mode_from(&mut args, SweepMode::Adaptive)?;
    let cores: Vec<CoreKind> = match args.take_opt::<String>("--core")?.as_deref() {
        None | Some("both") => vec![CoreKind::OutOfOrder, CoreKind::InOrder],
        Some("ooo") => vec![CoreKind::OutOfOrder],
        Some("inorder") => vec![CoreKind::InOrder],
        Some(other) => {
            return Err(ArgError(format!(
                "unknown core {other}; expected ooo, inorder, or both"
            )));
        }
    };
    let shard_count = args.take_opt::<usize>("--shards")?.unwrap_or(0);
    args.finish()?;
    let params = if quick {
        SimParams {
            warmup: 2_000,
            measure: 8_000,
            seed: 1,
        }
    } else {
        SimParams {
            warmup: 10_000,
            measure: 40_000,
            seed: 1,
        }
    };
    let profs = profiles::all();
    let points = standard_points();
    let structures = StructureSet::alpha_21264();
    let pool = fo4depth::exec::global();
    let start = std::time::Instant::now();
    let arenas = build_arenas(&profs, &params, pool);
    let trace_gen = start.elapsed().as_secs_f64();
    let mut sweeps = Vec::new();
    let mut ooo_reference: Option<DepthSweep> = None;
    let (mut total_cycles, mut total_rate) = (0u64, 0.0f64);
    for &core in &cores {
        let spec = SweepSpec {
            core,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points: &points,
            observed: false,
        };
        let sim_start = std::time::Instant::now();
        let sweep = depth_sweep_arenas(&spec, &arenas, pool);
        let sim = sim_start.elapsed().as_secs_f64();
        let (mut cycles, mut instructions) = (0u64, 0u64);
        for p in &sweep.points {
            for o in &p.outcomes {
                cycles += o.result.cycles;
                instructions += o.result.instructions;
            }
        }
        let (opt_t, opt_bips) = sweep.optimum(None);
        if core == CoreKind::OutOfOrder {
            ooo_reference = Some(sweep.clone());
        }
        total_cycles += cycles;
        total_rate = cycles as f64 / sim;
        let lanes = batch.resolve(core, points.len());
        let batched = lanes.map(|lanes| {
            let batched_start = std::time::Instant::now();
            let batched_sweep = depth_sweep_arenas_batched(&spec, &arenas, pool, lanes);
            let batched_sim = batched_start.elapsed().as_secs_f64();
            assert_eq!(
                batched_sweep, sweep,
                "batched sweep diverged from the scalar reference"
            );
            (lanes, batched_sim)
        });
        // The adaptive planner re-runs the same sweep through the search:
        // warm arenas, same lane shape, and a hard assert that it lands on
        // the dense optimum bit-for-bit.
        let adaptive = (mode == SweepMode::Adaptive).then(|| {
            let adaptive_start = std::time::Instant::now();
            let a = adaptive_sweep_arenas(&spec, &arenas, pool, lanes, &adaptive_config);
            let adaptive_sim = adaptive_start.elapsed().as_secs_f64();
            assert_eq!(
                a.sweep.optimum(None),
                sweep.optimum(None),
                "adaptive sweep missed the dense optimum"
            );
            (a, adaptive_sim)
        });
        let mut fields = vec![
            (
                "core",
                Json::str(match core {
                    CoreKind::OutOfOrder => "ooo",
                    CoreKind::InOrder => "inorder",
                }),
            ),
            ("sim_seconds", Json::Num(sim)),
        ];
        if let Some((lanes, batched_sim)) = batched {
            fields.push(("batched_sim_seconds", Json::Num(batched_sim)));
            fields.push(("batch_lanes", Json::uint(lanes as u64)));
            fields.push(("batched_speedup", Json::Num(sim / batched_sim)));
        }
        if let Some((a, adaptive_sim)) = &adaptive {
            fields.push(("adaptive_sim_seconds", Json::Num(*adaptive_sim)));
            fields.push(("cells_simulated_dense", Json::uint(a.cells_dense as u64)));
            fields.push((
                "cells_simulated_adaptive",
                Json::uint(a.cells_simulated as u64),
            ));
            fields.push(("adaptive_speedup", Json::Num(sim / adaptive_sim)));
        }
        fields.extend(vec![
            ("simulated_cycles", Json::uint(cycles)),
            ("simulated_instructions", Json::uint(instructions)),
            (
                "simulated_cycles_per_second",
                Json::Num(cycles as f64 / sim),
            ),
            (
                "simulated_instructions_per_second",
                Json::Num(instructions as f64 / sim),
            ),
            (
                "optimum",
                Json::obj(vec![
                    ("t_useful", Json::Num(opt_t)),
                    ("bips", Json::Num(opt_bips)),
                ]),
            ),
        ]);
        sweeps.push(Json::obj(fields));
    }
    let wall = start.elapsed().as_secs_f64();
    // The shard harness runs after the local sweeps so the OOO reference
    // exists for the byte-identity assert; `wall_seconds` is captured
    // first so it keeps meaning what it always has (local trace gen plus
    // simulation), not subprocess startup.
    let sharding = if shard_count > 0 {
        Some(shard_perf(shard_count, &params, ooo_reference.as_ref())?)
    } else {
        None
    };
    // The yield harness: the Monte Carlo variation sweep on the
    // out-of-order core, reusing the warm arenas. Runs after `wall` is
    // captured so `wall_seconds` keeps its historical meaning; the MC cost
    // is reported on its own as `mc_sim_seconds`.
    let yield_perf = {
        use fo4depth::study::yield_sweep::{run_yield_plan, YieldPlan};
        let mut variation = VariationSpec::new(1);
        if quick {
            variation.samples = 24;
        }
        let spec = SweepSpec {
            core: CoreKind::OutOfOrder,
            profiles: &profs,
            params: &params,
            structures: &structures,
            overhead: Fo4::new(1.8),
            points: &points,
            observed: false,
        };
        let plan =
            YieldPlan::build(spec, variation, pool).expect("default variation spec is valid");
        let mc_cells = plan.sample_cells();
        let lanes = batch.resolve(CoreKind::OutOfOrder, points.len());
        let mc_start = std::time::Instant::now();
        let sweep = run_yield_plan(&plan, &arenas, pool, lanes);
        let mc_sim = mc_start.elapsed().as_secs_f64();
        let (nom_t, nom_bips) = sweep.nominal_optimum();
        let (mc_t, mc_yw) = sweep.yield_optimum_mc();
        let (fast_t, fast_yw) = sweep.yield_optimum_fast();
        let agreement = sweep.agreement();
        eprintln!(
            "yield: {} dies x {} points in {mc_sim:.3} s \
             ({:.0} MC cells/s), optimum {mc_t} FO4 vs nominal {nom_t} FO4",
            sweep.samples,
            points.len(),
            mc_cells as f64 / mc_sim
        );
        Json::obj(vec![
            ("samples", Json::uint(u64::from(sweep.samples))),
            ("mc_cells", Json::uint(mc_cells as u64)),
            ("mc_sim_seconds", Json::Num(mc_sim)),
            ("mc_samples_per_sec", Json::Num(mc_cells as f64 / mc_sim)),
            (
                "optimum_nominal",
                Json::obj(vec![
                    ("t_useful", Json::Num(nom_t)),
                    ("bips", Json::Num(nom_bips)),
                ]),
            ),
            (
                "optimum_yield_mc",
                Json::obj(vec![
                    ("t_useful", Json::Num(mc_t)),
                    ("ywbips", Json::Num(mc_yw)),
                ]),
            ),
            (
                "optimum_yield_fast",
                Json::obj(vec![
                    ("t_useful", Json::Num(fast_t)),
                    ("ywbips", Json::Num(fast_yw)),
                ]),
            ),
            (
                "agreement",
                Json::obj(vec![
                    ("max_yield_abs_err", Json::Num(agreement.max_yield_abs_err)),
                    (
                        "optimum_step_delta",
                        Json::Int(agreement.optimum_step_delta),
                    ),
                ]),
            ),
        ])
    };
    let mut doc_fields = vec![
        ("schema_version", Json::Int(6)),
        (
            "workload",
            Json::obj(vec![
                (
                    "cores",
                    Json::Arr(
                        cores
                            .iter()
                            .map(|c| {
                                Json::str(match c {
                                    CoreKind::OutOfOrder => "ooo",
                                    CoreKind::InOrder => "inorder",
                                })
                            })
                            .collect(),
                    ),
                ),
                (
                    "points",
                    Json::Arr(points.iter().map(|t| Json::Num(t.get())).collect()),
                ),
                (
                    "benchmarks",
                    Json::Arr(profs.iter().map(|p| Json::str(&p.name)).collect()),
                ),
                ("warmup", Json::uint(params.warmup)),
                ("measure", Json::uint(params.measure)),
                ("seed", Json::uint(params.seed)),
            ]),
        ),
        (
            "jobs",
            Json::uint(fo4depth::exec::global().threads() as u64),
        ),
        ("trace_gen_seconds", Json::Num(trace_gen)),
        ("wall_seconds", Json::Num(wall)),
        ("sweeps", Json::Arr(sweeps)),
        ("yield", yield_perf),
    ];
    if let Some(sharding) = sharding {
        doc_fields.push(("sharding", sharding));
    }
    let doc = Json::obj(doc_fields);
    let text = doc.pretty();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
            eprintln!(
                "wrote {path}: {wall:.3} s wall ({trace_gen:.3} s trace gen), \
                 {total_cycles} cycles, last sweep {total_rate:.0} cycles/s"
            );
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses the daemon options shared by `serve` and `route` into a
/// [`ServeConfig`]. Does not call `args.finish()` — `route` still has its
/// own flags to take afterwards.
fn serve_config_from(args: &mut Args) -> Result<ServeConfig, ArgError> {
    let mut config = ServeConfig::default();
    if let Some(addr) = args.take_opt::<String>("--addr")? {
        config.addr = addr;
    }
    if let Some(n) = args.take_opt::<usize>("--workers")? {
        if n == 0 {
            return Err(ArgError("--workers needs a positive value".into()));
        }
        config.workers = n;
    }
    if let Some(n) = args.take_opt("--queue")? {
        config.queue_capacity = n;
    }
    if let Some(n) = args.take_opt("--cache")? {
        config.response_entries = n;
    }
    if let Some(n) = args.take_opt("--cell-cache")? {
        config.cell_entries = n;
    }
    if let Some(n) = args.take_opt("--max-body")? {
        config.max_body = n;
    }
    if let Some(ms) = args.take_opt::<u64>("--timeout-ms")? {
        config.io_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = args.take_opt::<u64>("--deadline-ms")? {
        config.request_deadline = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(dir) = args.take_opt::<String>("--cache-dir")? {
        config.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(policy) = args.take_opt::<String>("--fsync")? {
        config.fsync = FsyncPolicy::parse(&policy).ok_or_else(|| {
            ArgError(format!(
                "unknown fsync policy {policy}; expected always, batch, or off"
            ))
        })?;
    }
    Ok(config)
}

/// Binds and runs a daemon until SIGTERM/SIGINT, then drains and exits 0.
/// Prints the bound address on stdout once listening, so scripts (and the
/// CI smoke jobs) know when to connect.
fn run_server(config: ServeConfig) -> ExitCode {
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            use std::io::Write as _;
            println!("listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot query bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the single-node simulation service.
fn cmd_serve(mut args: Args) -> Result<ExitCode, ArgError> {
    apply_jobs(&mut args)?;
    let config = serve_config_from(&mut args)?;
    args.finish()?;
    Ok(run_server(config))
}

/// Runs the routing tier: the same HTTP surface as `serve`, but cell
/// simulation scatters to the owning `--shard` daemons by consistent
/// hashing and gathers back byte-identically. The router keeps its own
/// response/cell caches (and optional `--cache-dir`), so warm traffic
/// never leaves the tier.
fn cmd_route(mut args: Args) -> Result<ExitCode, ArgError> {
    apply_jobs(&mut args)?;
    let mut config = serve_config_from(&mut args)?;
    config.shards = args.take_multi::<String>("--shard")?;
    if config.shards.is_empty() {
        return Err(ArgError(
            "route needs at least one --shard HOST:PORT".into(),
        ));
    }
    if let Some(n) = args.take_opt::<usize>("--shard-connections")? {
        if n == 0 {
            return Err(ArgError(
                "--shard-connections needs a positive value".into(),
            ));
        }
        config.upstream.connections = n;
    }
    if let Some(n) = args.take_opt::<usize>("--shard-retries")? {
        config.upstream.retries = n;
    }
    if let Some(ms) = args.take_opt::<u64>("--shard-backoff-ms")? {
        config.upstream.backoff = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = args.take_opt::<u64>("--shard-timeout-ms")? {
        config.upstream.io_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(n) = args.take_opt::<usize>("--ring-replicas")? {
        if n == 0 {
            return Err(ArgError("--ring-replicas needs a positive value".into()));
        }
        config.upstream.ring_replicas = n;
    }
    if let Some(n) = args.take_opt::<usize>("--replication")? {
        if n == 0 {
            return Err(ArgError("--replication needs a positive value".into()));
        }
        config.upstream.replication = n;
    }
    if let Some(spec) = args.take_opt::<String>("--net-faults")? {
        config.upstream.net_fault = parse_net_faults(&spec)?;
    }
    args.finish()?;
    Ok(run_server(config))
}

/// Parses a `--net-faults` schedule: comma-separated fault tokens,
/// pushed FIFO onto the per-operation scripts of a
/// [`ScriptedNetFaults`]. `connect-pass`/`read-pass` script an explicit
/// clean operation (to position later faults mid-sweep); once a script
/// runs dry that operation passes cleanly forever.
fn parse_net_faults(spec: &str) -> Result<Arc<ScriptedNetFaults>, ArgError> {
    let faults = ScriptedNetFaults::new();
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        match token {
            "connect-refuse" => faults.script_connect(Some(InjectedNetFault::Refuse)),
            "connect-pass" => faults.script_connect(None),
            "read-hang" => faults.script_read(Some(InjectedNetFault::Hang)),
            "read-truncate" => faults.script_read(Some(InjectedNetFault::Truncate)),
            "read-garbage" => faults.script_read(Some(InjectedNetFault::Garbage)),
            "read-pass" => faults.script_read(None),
            other => {
                return Err(ArgError(format!(
                    "unknown net-fault token {other:?}; expected connect-refuse, \
                     connect-pass, read-hang, read-truncate, read-garbage, or read-pass"
                )))
            }
        }
    }
    Ok(faults)
}

/// Offline maintenance of a persistent cell cache directory: `stat`
/// summarizes, `verify` additionally decodes every live payload, and
/// `compact` rewrites the log atomically keeping only the winning record
/// per fingerprint. None of these may race a live daemon on the same
/// directory.
fn cmd_cache(mut args: Args) -> Result<ExitCode, ArgError> {
    let dir = args
        .take_opt::<String>("--cache-dir")?
        .ok_or_else(|| ArgError("cache needs --cache-dir DIR".into()))?;
    let action = args
        .take_positional()
        .ok_or_else(|| ArgError("cache needs an action: stat, verify, or compact".into()))?;
    args.finish()?;
    let dir = std::path::Path::new(&dir);

    let print_report = |label: &str, r: &store::LogReport| {
        println!("{label}: {}", dir.join(store::LOG_FILE).display());
        println!(
            "  header          {}",
            if r.header_ok { "ok" } else { "BAD" }
        );
        println!("  log bytes       {}", r.log_bytes);
        println!("  records         {}", r.records);
        println!("  live entries    {}", r.entries);
        println!("  live bytes      {}", r.live_bytes);
        println!("  corrupt tail    {} bytes", r.corrupt_tail_bytes);
        if !r.by_core.is_empty() {
            println!("  cells by core");
            for (core, n) in &r.by_core {
                println!("    {core:<13} {n}");
            }
        }
        if !r.by_benchmark.is_empty() {
            println!("  cells by benchmark");
            for (bench, n) in &r.by_benchmark {
                println!("    {bench:<13} {n}");
            }
        }
    };

    match action.as_str() {
        "stat" | "verify" => {
            let verify = action == "verify";
            let report = match store::inspect(dir, verify) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot read cache log: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            print_report(if verify { "verify" } else { "stat" }, &report);
            if verify {
                println!("  payload errors  {}", report.payload_errors);
            }
            // stat reports whatever it finds; verify fails loudly when
            // any live payload is undecodable (recovery would drop it).
            if verify && (report.payload_errors > 0 || !report.header_ok) {
                return Ok(ExitCode::FAILURE);
            }
            Ok(ExitCode::SUCCESS)
        }
        "compact" => {
            let report = match store::compact(dir) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("compact failed: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            println!("compacted: {}", dir.join(store::LOG_FILE).display());
            println!(
                "  bytes           {} -> {}",
                report.bytes_before, report.bytes_after
            );
            println!("  live entries    {}", report.entries);
            println!(
                "  superseded      {} records dropped",
                report.superseded_dropped
            );
            println!(
                "  corrupt tail    {} bytes dropped",
                report.corrupt_tail_bytes
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(ArgError(format!(
            "unknown cache action {other}; expected stat, verify, or compact"
        ))),
    }
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return usage();
    }
    let cmd = raw.remove(0);
    let args = Args::new(raw);
    let result = match cmd.as_str() {
        "table3" => args.finish().map(|()| {
            print!("{}", render::table3(&table3(&StructureSet::alpha_21264())));
            ExitCode::SUCCESS
        }),
        "sweep" => cmd_sweep(args),
        "bench" => cmd_bench(args),
        "record" => cmd_record(args),
        "replay" => cmd_replay(args),
        "validate" => args.finish().map(|()| {
            let params = SimParams {
                warmup: 30_000,
                measure: 60_000,
                seed: 1,
            };
            let rows = validation::validate_all(&params, &Bands::default());
            print!("{}", validation::render(&rows));
            ExitCode::SUCCESS
        }),
        "floorplan" => args.finish().map(|()| {
            let plan = Floorplan::of(
                &fo4depth::study::capacity::CapacityChoice::base(),
                TechNode::NM_100,
            );
            println!("Alpha-class floorplan at 100 nm (fo4depth-cacti area model):");
            println!("  DL1        {:>7.2} mm2", plan.dcache_mm2);
            println!("  I-cache    {:>7.2} mm2", plan.icache_mm2);
            println!("  L2 (2 MB)  {:>7.2} mm2", plan.l2_mm2);
            println!("  window     {:>7.2} mm2", plan.window_mm2);
            println!("  regfiles   {:>7.2} mm2", plan.regfiles_mm2);
            println!("  predictor  {:>7.2} mm2", plan.predictor_mm2);
            println!(
                "  core total {:>7.2} mm2  (span {:.2} mm)",
                plan.core_mm2,
                plan.core_span_mm()
            );
            println!(
                "  die total  {:>7.2} mm2  (span {:.2} mm)",
                plan.total_mm2,
                plan.die_span_mm()
            );
            let model = fo4depth_fo4::WireModel::default();
            println!(
                "  front-end transport: {:.2} mm = {:.1} FO4 of repeated wire",
                plan.front_end_distance_mm(),
                plan.front_end_wire_fo4(&model).get()
            );
            ExitCode::SUCCESS
        }),
        "yield" => cmd_yield(args),
        "report" => cmd_report(args),
        "perf" => cmd_perf(args),
        "serve" => cmd_serve(args),
        "route" => cmd_route(args),
        "cache" => cmd_cache(args),
        "experiments" => args.finish().map(|()| {
            for e in registry() {
                println!(
                    "{:16} {}\n{:16} paper: {}\n{:16} run:   {}\n",
                    e.id, e.title, "", e.paper, "", e.target
                );
            }
            ExitCode::SUCCESS
        }),
        other => {
            eprintln!("fo4depth: unknown command {other}");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fo4depth {cmd}: {e}");
            eprintln!("run `fo4depth` with no arguments for usage");
            ExitCode::from(2)
        }
    }
}
